#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>

namespace xentry::obs {

namespace {

/// map::operator[] with heterogeneous lookup (no temporary string on hit).
template <typename Map>
typename Map::mapped_type& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

template <typename Map>
const typename Map::mapped_type* find_only(const Map& map,
                                           std::string_view name) {
  auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Log2Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_only(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_only(gauges_, name);
}

const Log2Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_only(histograms_, name);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].merge_from(c);
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].merge_from(g);
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge_from(h);
  }
}

namespace {

/// Metric names are identifiers by convention, but export must stay valid
/// JSON for any name.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

double Log2Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (0-based, midpoint convention keeps
  // p50 of a symmetric distribution in the middle bucket).
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double lo_rank = static_cast<double>(cum);
    cum += buckets_[i];
    if (rank >= static_cast<double>(cum)) continue;
    // Interpolate within the bucket's value range by rank position.
    const double frac =
        buckets_[i] == 1
            ? 0.0
            : (rank - lo_rank) / static_cast<double>(buckets_[i] - 1);
    const double lo = static_cast<double>(bucket_lower_bound(i));
    const double hi = static_cast<double>(bucket_upper_bound(i));
    double v = lo + frac * (hi - lo);
    // Clamp to the observed envelope: the extreme buckets are bounded by
    // the true min/max, not their power-of-two edges.
    if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
    if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
    return v;
  }
  return static_cast<double>(max_);
}

void Log2Histogram::write_json(std::ostream& os) const {
  os << "{\"count\": " << count_ << ", \"sum\": " << sum_;
  if (count_ > 0) {
    os << ", \"min\": " << min_ << ", \"max\": " << max_;
    // Fixed precision keeps the export byte-stable across libc float
    // formatting defaults.
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f",
                  percentile(0.50), percentile(0.95), percentile(0.99));
    os << buf;
  }
  os << ", \"buckets\": {";
  bool bfirst = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!bfirst) os << ", ";
    bfirst = false;
    os << '"' << bucket_lower_bound(i) << '"' << ": " << buckets_[i];
  }
  os << "}}";
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << c.value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << g.value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": ";
    h.write_json(os);
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace xentry::obs
