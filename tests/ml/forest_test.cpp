#include "ml/forest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>

#include "ml/metrics.hpp"

namespace xentry::ml {
namespace {

Dataset noisy_data(std::uint64_t seed, int n) {
  Dataset ds({"a", "b", "c"});
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, 100);
  std::bernoulli_distribution noise(0.05);
  for (int i = 0; i < n; ++i) {
    const std::int64_t a = u(rng), b = u(rng), c = u(rng);
    bool incorrect = (a > 60 && b < 40) || c > 90;
    if (noise(rng)) incorrect = !incorrect;
    std::array<std::int64_t, 3> v{a, b, c};
    ds.add(v, incorrect ? Label::Incorrect : Label::Correct);
  }
  return ds;
}

TEST(RandomForestTest, TrainsAndPredicts) {
  Dataset train = noisy_data(1, 600);
  Dataset test = noisy_data(2, 300);
  RandomForest forest;
  RandomForest::Params p;
  p.num_trees = 11;
  p.seed = 7;
  forest.train(train, p);
  ASSERT_TRUE(forest.trained());
  EXPECT_EQ(forest.trees().size(), 11u);
  auto m = evaluate(test, [&](auto row) { return forest.predict(row); });
  EXPECT_GT(m.accuracy(), 0.85);
}

TEST(RandomForestTest, ForestAtLeastMatchesSingleTreeOnNoisyTest) {
  Dataset train = noisy_data(3, 800);
  Dataset test = noisy_data(4, 400);
  DecisionTree single;
  single.train(train, random_tree_params(3, 5));
  RandomForest forest;
  RandomForest::Params p;
  p.num_trees = 21;
  p.seed = 5;
  forest.train(train, p);
  auto ms = evaluate(test, [&](auto row) { return single.predict(row); });
  auto mf = evaluate(test, [&](auto row) { return forest.predict(row); });
  EXPECT_GE(mf.accuracy() + 0.02, ms.accuracy());
}

TEST(RandomForestTest, ComparisonsAccumulateAcrossTrees) {
  Dataset train = noisy_data(6, 300);
  RandomForest forest;
  RandomForest::Params p;
  p.num_trees = 5;
  forest.train(train, p);
  std::array<std::int64_t, 3> v{50, 50, 50};
  int cmps = 0;
  forest.predict(v, &cmps);
  EXPECT_GE(cmps, 5);  // at least one comparison per non-trivial tree
}

TEST(RandomForestTest, InvalidParamsThrow) {
  Dataset train = noisy_data(1, 10);
  RandomForest forest;
  RandomForest::Params p;
  p.num_trees = 0;
  EXPECT_THROW(forest.train(train, p), std::invalid_argument);
}

TEST(RandomForestTest, UntrainedPredictThrows) {
  RandomForest forest;
  std::array<std::int64_t, 3> v{0, 0, 0};
  EXPECT_THROW(forest.predict(v), std::logic_error);
}

}  // namespace
}  // namespace xentry::ml
