file(REMOVE_RECURSE
  "libxentry_fault.a"
)
