// Differential harness: the mode-specialized fast engine (Cpu::run) must be
// bit-identical to the single-step reference engine (Cpu::run_reference) on
// every architectural observable — final StepInfo, all 18 registers, retired
// step count, TSC, performance counters, recorded trace, and memory
// contents — across randomly generated programs, every trap path, and all
// eight trace/mask/shadow mode combinations.  Also pins down macro-op
// fusion legality at basic-block boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/memory.hpp"

namespace xentry::sim {
namespace {

constexpr Addr kCodeBase = 0x400000;
constexpr Addr kDataBase = 0x10000;
constexpr Addr kDataSize = 0x100;
constexpr Addr kStackBase = 0x20000;
constexpr Addr kStackSize = 0x100;
constexpr Addr kStackTop = kStackBase + 0x80;  // room to pop upward too
constexpr std::int64_t kShadowOffset = 0x5000;

Memory make_memory() {
  Memory mem;
  mem.map(kDataBase, kDataSize, Perm::ReadWrite, "data");
  mem.map(0x11000, 0x40, Perm::Read, "rodata");
  mem.map(kStackBase, kStackSize, Perm::ReadWrite, "stack");
  mem.map(kStackBase + static_cast<Addr>(kShadowOffset), kStackSize,
          Perm::ReadWrite, "shadow_stack");
  return mem;
}

/// Every opcode the generator can emit, weighted towards the interesting
/// ones (memory ops, stack ops, compare+branch pairs for fusion).
const Opcode kOpcodePool[] = {
    Opcode::Nop,       Opcode::MovRR,    Opcode::MovRI,    Opcode::Load,
    Opcode::Load,      Opcode::Store,    Opcode::Store,    Opcode::Push,
    Opcode::Push,      Opcode::Pop,      Opcode::Pop,      Opcode::AddRR,
    Opcode::AddRI,     Opcode::SubRR,    Opcode::SubRI,    Opcode::MulRR,
    Opcode::DivR,      Opcode::AndRR,    Opcode::AndRI,    Opcode::OrRR,
    Opcode::OrRI,      Opcode::XorRR,    Opcode::XorRI,    Opcode::ShlRI,
    Opcode::ShrRI,     Opcode::ShlRR,    Opcode::ShrRR,    Opcode::Neg,
    Opcode::Not,       Opcode::Inc,      Opcode::Dec,      Opcode::CmpRR,
    Opcode::CmpRI,     Opcode::CmpRR,    Opcode::CmpRI,    Opcode::TestRR,
    Opcode::TestRI,    Opcode::Jmp,      Opcode::JmpR,     Opcode::Je,
    Opcode::Jne,       Opcode::Jl,       Opcode::Jle,      Opcode::Jg,
    Opcode::Jge,       Opcode::Jb,       Opcode::Jae,      Opcode::Call,
    Opcode::Ret,       Opcode::Rdtsc,    Opcode::Hlt,      Opcode::AssertLeRI,
    Opcode::AssertGeRI, Opcode::AssertEqRI, Opcode::AssertNeRI,
    Opcode::AssertEqRR, Opcode::AssertLtRR, Opcode::Ud,
};

/// A random program over the full ISA.  Immediates for branches/calls land
/// mostly inside the code image (including on and between fusable pairs),
/// occasionally outside it (#PF paths); memory displacements mostly hit the
/// data region.  Assembled through Program's constructor, so fusion
/// metadata is computed exactly as for real workloads.
Program random_program(std::mt19937_64& rng, std::size_t len) {
  std::uniform_int_distribution<std::size_t> pick_op(
      0, std::size(kOpcodePool) - 1);
  std::uniform_int_distribution<int> pick_reg(0, kNumArchRegs - 1);
  std::uniform_int_distribution<std::int64_t> pick_target(
      -2, static_cast<std::int64_t>(len) + 1);
  std::uniform_int_distribution<std::int64_t> pick_disp(-4, kDataSize + 4);
  std::uniform_int_distribution<std::int64_t> pick_imm(-64, 64);
  std::bernoulli_distribution data_addr(0.5);

  std::vector<Instruction> code(len);
  for (Instruction& insn : code) {
    insn.op = kOpcodePool[pick_op(rng)];
    insn.r1 = static_cast<Reg>(pick_reg(rng));
    insn.r2 = static_cast<Reg>(pick_reg(rng));
    insn.aux = static_cast<std::uint32_t>(pick_imm(rng) & 0xff);
    switch (insn.op) {
      case Opcode::Jmp: case Opcode::Je: case Opcode::Jne:
      case Opcode::Jl: case Opcode::Jle: case Opcode::Jg:
      case Opcode::Jge: case Opcode::Jb: case Opcode::Jae:
      case Opcode::Call:
        insn.imm = static_cast<std::int64_t>(kCodeBase) + pick_target(rng);
        break;
      case Opcode::Load:
      case Opcode::Store:
        insn.imm = pick_disp(rng);
        break;
      case Opcode::MovRI:
        // Sometimes a data/code address (indirect-jump material, which
        // also feeds the fusion landing set), sometimes a small scalar.
        insn.imm = data_addr(rng)
                       ? static_cast<std::int64_t>(kCodeBase) + pick_target(rng)
                       : pick_imm(rng);
        break;
      default:
        insn.imm = pick_imm(rng);
        break;
    }
  }
  return Program(kCodeBase, std::move(code), {});
}

struct EngineState {
  StepInfo info;
  std::array<Word, kNumArchRegs> regs;
  std::uint64_t steps = 0;
  Word tsc = 0;
  PerfSnapshot counters;
  std::vector<Addr> trace;
  Memory::Snapshot memory;
};

EngineState run_engine(const Program& prog, std::uint64_t seed, bool fast,
                       bool trace, bool masks, bool shadow,
                       std::uint64_t max_steps) {
  Memory mem = make_memory();
  Cpu cpu(&prog, &mem);
  cpu.reset(prog.base(), kStackTop);
  cpu.set_tsc(seed & 0xffff);

  // Deterministic initial register soup (same for both engines).
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Word> pick(0, ~Word{0});
  for (int r = 0; r < kNumArchRegs; ++r) {
    const Reg reg = static_cast<Reg>(r);
    if (reg == Reg::rip || reg == Reg::rsp) continue;
    // Mostly small values and valid addresses; raw 64-bit soup sometimes.
    const Word v = pick(rng);
    cpu.set_reg(reg, (v & 3) == 0 ? v
                                  : (v & 1) ? (kDataBase + (v & 0xff))
                                            : (v & 0x3f));
  }

  EngineState st;
  cpu.set_mask_tracking(masks);
  if (trace) cpu.set_trace(&st.trace);
  if (shadow) cpu.enable_shadow_stack(kShadowOffset);
  cpu.counters().arm();

  st.info = fast ? cpu.run(max_steps) : cpu.run_reference(max_steps);
  st.regs = cpu.regs();
  st.steps = cpu.steps_executed();
  st.tsc = cpu.tsc();
  st.counters = cpu.counters().disarm();
  st.memory = mem.snapshot();
  return st;
}

void expect_equivalent(const EngineState& a, const EngineState& b,
                       const std::string& what) {
  EXPECT_EQ(a.info.status, b.info.status) << what;
  EXPECT_EQ(a.info.trap.kind, b.info.trap.kind) << what;
  EXPECT_EQ(a.info.trap.fault_addr, b.info.trap.fault_addr) << what;
  EXPECT_EQ(a.info.trap.aux, b.info.trap.aux) << what;
  EXPECT_EQ(a.info.rip_before, b.info.rip_before) << what;
  EXPECT_EQ(a.info.read_mask, b.info.read_mask) << what;
  EXPECT_EQ(a.info.written_mask, b.info.written_mask) << what;
  EXPECT_EQ(a.regs, b.regs) << what;
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.tsc, b.tsc) << what;
  EXPECT_EQ(a.counters, b.counters) << what;
  EXPECT_EQ(a.trace, b.trace) << what;
  EXPECT_TRUE(a.memory == b.memory) << what;
}

TEST(EngineEquivalenceTest, RandomProgramsAllModeCombinations) {
  std::mt19937_64 rng(0x1234abcdu);
  int halted = 0, trapped = 0, watchdogged = 0, fused_programs = 0;
  for (int p = 0; p < 400; ++p) {
    const std::size_t len = 4 + (p % 60);
    const Program prog = random_program(rng, len);
    for (std::size_t off = 0; off + 1 < prog.size(); ++off) {
      if (prog.fused(off).fused) {
        ++fused_programs;
        break;
      }
    }
    const std::uint64_t seed = rng();
    const std::uint64_t max_steps = 1 + (seed % 300);
    for (unsigned mode = 0; mode < 8; ++mode) {
      const bool trace = mode & 1, masks = mode & 2, shadow = mode & 4;
      const EngineState fast =
          run_engine(prog, seed, true, trace, masks, shadow, max_steps);
      const EngineState ref =
          run_engine(prog, seed, false, trace, masks, shadow, max_steps);
      expect_equivalent(
          fast, ref,
          "program " + std::to_string(p) + " mode " + std::to_string(mode));
      if (mode == 0) {
        if (fast.info.status == StepInfo::Status::Halted) ++halted;
        else if (fast.info.trap.kind == TrapKind::Watchdog) ++watchdogged;
        else ++trapped;
      }
    }
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
  // The generator must actually exercise every exit class and fusion.
  EXPECT_GT(halted, 0);
  EXPECT_GT(trapped, 0);
  EXPECT_GT(watchdogged, 0);
  EXPECT_GT(fused_programs, 100);
}

TEST(EngineEquivalenceTest, FusedPairRetiresAsTwoInstructions) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 5);
  const auto out = as.make_label();
  as.cmpi(Reg::rax, 5);  // fusable head
  as.je(out);            // fused tail, taken
  as.movi(Reg::rbx, 1);  // skipped
  as.bind(out);
  as.hlt();
  const Program prog = as.finish();
  ASSERT_TRUE(prog.fused(1).fused);
  EXPECT_EQ(prog.fused(1).jcc, Opcode::Je);

  Memory mem = make_memory();
  Cpu cpu(&prog, &mem);
  cpu.reset(prog.base(), kStackTop);
  std::vector<Addr> trace;
  cpu.set_trace(&trace);
  cpu.counters().arm();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);

  // movi + cmp + je retire; the pair contributes two trace entries, two
  // retired instructions (one branch), and two TSC ticks.
  EXPECT_EQ(cpu.steps_executed(), 3u);
  EXPECT_EQ(cpu.tsc(), 3 * kTscPerStep);
  const PerfSnapshot counters = cpu.counters().disarm();
  EXPECT_EQ(counters.inst_retired, 3u);
  EXPECT_EQ(counters.branches, 1u);
  const std::vector<Addr> want = {kCodeBase, kCodeBase + 1, kCodeBase + 2};
  EXPECT_EQ(trace, want);
  EXPECT_EQ(cpu.reg(Reg::rbx), 0u);  // the not-taken slot was skipped
}

TEST(EngineEquivalenceTest, JumpTargetBetweenPairBlocksFusion) {
  // A branch landing directly on the Jcc slot means control flow can enter
  // between head and tail: the pair must not fuse.
  Assembler as(kCodeBase);
  const auto jcc_slot = as.make_label();
  const auto end = as.make_label();
  as.movi(Reg::rax, 1);
  as.cmpi(Reg::rax, 1);  // head (slot 1)
  as.bind(jcc_slot);
  as.je(end);  // tail (slot 2) — also a landing point
  as.jmp(jcc_slot);
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  EXPECT_FALSE(prog.fused(1).fused);
}

TEST(EngineEquivalenceTest, MovRIOfCodeAddressBlocksFusion) {
  // MovRI of a label is indirect-jump material: if the loaded address is
  // the Jcc slot, a JmpR may land between the pair, so fusion is illegal.
  Assembler as(kCodeBase);
  const auto tail = as.make_label();
  const auto end = as.make_label();
  as.movi(Reg::rcx, tail);  // rcx = address of the je below
  as.cmpi(Reg::rax, 0);     // head (slot 1)
  as.bind(tail);
  as.je(end);  // tail (slot 2)
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  EXPECT_FALSE(prog.fused(1).fused);
}

TEST(EngineEquivalenceTest, SymbolOnTailBlocksFusion) {
  Assembler as(kCodeBase);
  const auto end = as.make_label();
  as.cmpi(Reg::rax, 0);  // head (slot 0)
  as.global("entry2");   // dispatchable entry right on the tail
  as.je(end);
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  EXPECT_FALSE(prog.fused(0).fused);
}

TEST(EngineEquivalenceTest, CallReturnSiteLandsOnHeadNotTail) {
  // A call's return site is the slot right after it.  When that slot is a
  // fusable pair's *head*, control entering there still executes both
  // instructions of the pair — fusion stays legal.  (A return site can
  // never be a pair's tail: that would put the call in the head slot, and
  // a call is not a fusable head.)
  Assembler as(kCodeBase);
  const auto skip = as.make_label();
  as.jmp(skip);
  as.global("leaf");
  as.ret();
  as.bind(skip);
  as.call("leaf");       // slot 2; return site is slot 3
  as.cmpi(Reg::rax, 0);  // slot 3: head, and a landing point
  as.je(skip);           // slot 4: tail, not a landing point
  as.hlt();
  const Program prog = as.finish();
  EXPECT_TRUE(prog.fused(3).fused);
}

TEST(EngineEquivalenceTest, WatchdogBoundarySplitsFusedPair) {
  // max_steps expiring between head and tail: the fast loop must execute
  // the head alone and then watchdog, exactly like the reference engine.
  // test rax,0 sets ZF for any rax, so the loop never exits.
  Assembler as(kCodeBase);
  const auto loop = as.here();
  as.testi(Reg::rax, 0);
  as.je(loop);
  as.hlt();
  const Program prog = as.finish();
  ASSERT_TRUE(prog.fused(0).fused);

  for (std::uint64_t max_steps = 1; max_steps <= 5; ++max_steps) {
    const EngineState fast =
        run_engine(prog, 42, true, true, true, false, max_steps);
    const EngineState ref =
        run_engine(prog, 42, false, true, true, false, max_steps);
    expect_equivalent(fast, ref, "max_steps " + std::to_string(max_steps));
    EXPECT_EQ(fast.info.trap.kind, TrapKind::Watchdog);
    EXPECT_EQ(fast.steps, max_steps);
  }
}

}  // namespace
}  // namespace xentry::sim
