#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <array>

namespace xentry::ml {
namespace {

TEST(MetricsTest, ConfusionMatrixRates) {
  ConfusionMatrix m;
  m.true_positive = 90;
  m.false_negative = 10;
  m.false_positive = 5;
  m.true_negative = 895;
  EXPECT_EQ(m.total(), 1000u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.985);
  EXPECT_DOUBLE_EQ(m.false_positive_rate(), 5.0 / 900.0);
  EXPECT_DOUBLE_EQ(m.false_negative_rate(), 0.1);
  EXPECT_DOUBLE_EQ(m.precision(), 90.0 / 95.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.9);
}

TEST(MetricsTest, EmptyMatrixIsSafe) {
  ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
}

TEST(MetricsTest, EvaluateAgainstOracle) {
  Dataset ds({"x"});
  for (int i = 0; i < 10; ++i) {
    std::array<std::int64_t, 1> v{i};
    ds.add(v, i >= 7 ? Label::Incorrect : Label::Correct);
  }
  // Predictor flags x >= 6: one false positive (x=6), no false negatives.
  auto m = evaluate(ds, [](std::span<const std::int64_t> row) {
    return row[0] >= 6 ? Label::Incorrect : Label::Correct;
  });
  EXPECT_EQ(m.true_positive, 3u);
  EXPECT_EQ(m.false_positive, 1u);
  EXPECT_EQ(m.false_negative, 0u);
  EXPECT_EQ(m.true_negative, 6u);
}

TEST(MetricsTest, ToStringContainsAccuracy) {
  ConfusionMatrix m;
  m.true_negative = 99;
  m.false_positive = 1;
  EXPECT_NE(m.to_string().find("accuracy=99"), std::string::npos);
}

}  // namespace
}  // namespace xentry::ml
