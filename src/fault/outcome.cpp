#include "fault/outcome.hpp"

namespace xentry::fault {

std::string_view consequence_name(Consequence c) {
  switch (c) {
    case Consequence::Masked: return "masked";
    case Consequence::HypervisorCrash: return "hypervisor_crash";
    case Consequence::HypervisorHang: return "hypervisor_hang";
    case Consequence::AllVmFailure: return "all_vm_failure";
    case Consequence::OneVmFailure: return "one_vm_failure";
    case Consequence::AppCrash: return "app_crash";
    case Consequence::AppSdc: return "app_sdc";
  }
  return "?";
}

std::optional<Consequence> consequence_from_name(std::string_view name) {
  // Small fixed vocabulary: a linear scan over the canonical names keeps
  // the two directions trivially in sync.
  static constexpr Consequence kAll[] = {
      Consequence::Masked,        Consequence::HypervisorCrash,
      Consequence::HypervisorHang, Consequence::AllVmFailure,
      Consequence::OneVmFailure,  Consequence::AppCrash,
      Consequence::AppSdc,
  };
  for (Consequence c : kAll) {
    if (consequence_name(c) == name) return c;
  }
  return std::nullopt;
}

std::string_view undetected_class_name(UndetectedClass c) {
  switch (c) {
    case UndetectedClass::NotApplicable: return "n/a";
    case UndetectedClass::MisClassified: return "mis_classify";
    case UndetectedClass::StackValues: return "stack_values";
    case UndetectedClass::TimeValues: return "time_values";
    case UndetectedClass::OtherValues: return "other_values";
  }
  return "?";
}

std::optional<UndetectedClass> undetected_class_from_name(
    std::string_view name) {
  static constexpr UndetectedClass kAll[] = {
      UndetectedClass::NotApplicable, UndetectedClass::MisClassified,
      UndetectedClass::StackValues,   UndetectedClass::TimeValues,
      UndetectedClass::OtherValues,
  };
  for (UndetectedClass c : kAll) {
    if (undetected_class_name(c) == name) return c;
  }
  return std::nullopt;
}

}  // namespace xentry::fault
