file(REMOVE_RECURSE
  "libxentry_core.a"
)
