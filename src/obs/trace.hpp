// Structured span/event tracing, exported as Chrome trace-event JSON.
//
// Each shard owns a private TraceRecorder (no locks); all recorders of
// one campaign share an epoch so their timestamps live on one timeline,
// and the per-shard buffers are merged at campaign end with the shard
// index as the Chrome `tid`.  The output of `write_chrome_json` loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Event names are stored as string_views and must have static storage
// duration (string literals, handler symbols) — recording is then one
// clock read per span edge plus one vector push, with a hard cap on
// buffered events (`dropped()` counts the overflow, nothing reallocates
// past the cap).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace xentry::obs {

struct TraceEvent {
  std::string_view name;      ///< static storage only
  std::uint64_t ts_us = 0;    ///< microseconds since the recorder epoch
  std::uint64_t dur_us = 0;   ///< span duration ('X' events)
  std::int32_t tid = 0;       ///< Chrome thread lane (campaign shard index)
  char phase = 'X';           ///< 'X' complete span, 'i' instant
  std::string_view arg_name;  ///< optional single argument (static storage)
  std::uint64_t arg_value = 0;
};

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TraceRecorder(std::size_t max_events = 1u << 20)
      : TraceRecorder(max_events, Clock::now()) {}
  TraceRecorder(std::size_t max_events, Clock::time_point epoch)
      : epoch_(epoch), max_events_(max_events) {}

  Clock::time_point epoch() const { return epoch_; }
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              epoch_)
            .count());
  }

  /// Records a complete ('X') span.  `arg_name` must be static storage.
  void complete(std::string_view name, std::uint64_t ts_us,
                std::uint64_t dur_us, std::int32_t tid,
                std::string_view arg_name = {}, std::uint64_t arg_value = 0) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back({name, ts_us, dur_us, tid, 'X', arg_name, arg_value});
  }

  /// Records an instant ('i') event at the current time.
  void instant(std::string_view name, std::int32_t tid,
               std::string_view arg_name = {}, std::uint64_t arg_value = 0) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back({name, now_us(), 0, tid, 'i', arg_name, arg_value});
  }

  /// RAII span: captures the start on construction, records the complete
  /// event on destruction (or on an explicit `end`).  A null recorder
  /// makes the span a no-op, so call sites need no branching of their own.
  class Span {
   public:
    Span(TraceRecorder* rec, std::string_view name, std::int32_t tid)
        : rec_(rec), name_(name), tid_(tid) {
      if (rec_ != nullptr) start_ = rec_->now_us();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Attaches the span's single argument (static-storage name).
    void arg(std::string_view name, std::uint64_t value) {
      arg_name_ = name;
      arg_value_ = value;
    }

    void end() {
      if (rec_ == nullptr) return;
      const std::uint64_t now = rec_->now_us();
      rec_->complete(name_, start_, now - start_, tid_, arg_name_, arg_value_);
      rec_ = nullptr;
    }

   private:
    TraceRecorder* rec_;
    std::string_view name_;
    std::int32_t tid_;
    std::uint64_t start_ = 0;
    std::string_view arg_name_;
    std::uint64_t arg_value_ = 0;
  };

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t max_events() const { return max_events_; }

  /// Moves `other`'s events onto the end of this buffer (shard merge;
  /// call in shard order for deterministic event order).  The cap still
  /// applies; overflow adds to dropped().
  void merge_from(TraceRecorder&& other);

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}.  Includes
  /// thread_name metadata per distinct tid so Perfetto lanes read as
  /// "shard N".
  void write_chrome_json(std::ostream& os) const;

 private:
  Clock::time_point epoch_;
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace xentry::obs
