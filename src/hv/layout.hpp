// Physical-memory layout of the microvisor.
//
// All hypervisor-owned and guest-visible structures live at fixed word
// addresses so that (a) handlers written in the simulated ISA can address
// them with immediates and registers, and (b) the fault-outcome classifier
// can map a corrupted address to a semantic class (what the corruption
// would eventually break), which drives the paper's consequence taxonomy
// in Fig. 9: one-VM failure, all-VM failure, APP crash, APP SDC.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace xentry::hv::layout {

using sim::Addr;

// ---------------------------------------------------------------------------
// Region bases.  Chosen sparse: a single bit flip in a pointer register
// almost always leaves every mapped region (=> #PF), mirroring real 64-bit
// address-space sparseness.
// ---------------------------------------------------------------------------

inline constexpr Addr kCodeBase = 0x0000000000400000;

inline constexpr Addr kHvDataBase = 0x0000000000a00000;
inline constexpr Addr kHvDataSize = 0x200;

inline constexpr Addr kDomainBase = 0x0000000000b00000;
inline constexpr Addr kDomainStride = 64;
inline constexpr int kMaxDomains = 8;

inline constexpr Addr kVcpuBase = 0x0000000000c00000;
inline constexpr Addr kVcpuStride = 64;
inline constexpr int kMaxVcpus = 16;

inline constexpr Addr kSharedBase = 0x0000000000d00000;
inline constexpr Addr kSharedStride = 64;  // one shared-info page per domain

inline constexpr Addr kGuestRamBase = 0x0000000000100000;
inline constexpr Addr kGuestRamStride = 0x400;  // per-domain guest memory

inline constexpr Addr kStackBase = 0x0000000000e00000;
inline constexpr Addr kStackSize = 0x200;
inline constexpr Addr kStackTop = kStackBase + kStackSize;
/// Shadow-stack mirror displacement (shadow word for stack address A lives
/// at A + kShadowStackOffset); only mapped when the extension is enabled.
inline constexpr std::int64_t kShadowStackOffset = 0x1000;

inline constexpr Addr kConsoleBase = 0x0000000000f00000;
inline constexpr Addr kConsoleSize = 0x100;

// ---------------------------------------------------------------------------
// Hypervisor globals (offsets into the HV data region).
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kHvCurrentVcpu = 0;   ///< ptr to VCPU struct
inline constexpr std::int64_t kHvNumDomains = 1;
inline constexpr std::int64_t kHvNumVcpus = 2;
inline constexpr std::int64_t kHvSystemTime = 3;    ///< ns since boot
inline constexpr std::int64_t kHvTscScaleMul = 4;   ///< tsc -> ns multiplier
inline constexpr std::int64_t kHvTscScaleShift = 5;
inline constexpr std::int64_t kHvSoftirqPending = 6;  ///< bitmask
inline constexpr std::int64_t kHvSchedCursor = 7;     ///< round-robin index
inline constexpr std::int64_t kHvTimerDeadline = 8;
inline constexpr std::int64_t kHvXenVersion = 9;      ///< major<<16 | minor
inline constexpr std::int64_t kHvWallclockSec = 10;
inline constexpr std::int64_t kHvDebugreg = 11;       ///< 8 words (11..18)
inline constexpr std::int64_t kHvPlatformFlags = 19;
inline constexpr std::int64_t kHvIrqTable = 0x20;     ///< 16 words: irq -> dom*256+port
inline constexpr std::int64_t kHvTaskletCount = 0x30;
inline constexpr std::int64_t kHvTaskletQueue = 0x31; ///< 15 words
inline constexpr std::int64_t kHvRunqCount = 0x40;
inline constexpr std::int64_t kHvRunq = 0x41;         ///< kMaxVcpus words
inline constexpr std::int64_t kHvPerfcCounters = 0x60;///< 16 words of perfc
inline constexpr std::int64_t kHvScratch = 0x80;      ///< guest-context save (19 words)
inline constexpr std::int64_t kHvMcBanks = 0x98;      ///< 4 machine-check banks
inline constexpr std::int64_t kHvIpiArg = 0x9c;       ///< cross-CPU call argument
inline constexpr std::int64_t kHvNmiReason = 0x9d;
inline constexpr std::int64_t kHvKexecImage = 0x9e;
inline constexpr std::int64_t kHvXsmPolicy = 0x9f;
inline constexpr std::int64_t kHvHypercallTable = 0xa0; ///< 38 body addresses
inline constexpr std::int64_t kHvConsolePtr = 0xc8;   ///< console ring cursor
inline constexpr std::int64_t kHvApicEsr = 0xc9;
inline constexpr std::int64_t kHvThermal = 0xca;
inline constexpr std::int64_t kHvThrottle = 0xcb;

/// Softirq bit assignments (subset of Xen's).
inline constexpr std::int64_t kSoftirqTimer = 1 << 0;
inline constexpr std::int64_t kSoftirqSchedule = 1 << 1;
inline constexpr std::int64_t kSoftirqTasklet = 1 << 2;

// ---------------------------------------------------------------------------
// Domain struct fields (offsets within a kDomainStride slot).
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kDomId = 0;
inline constexpr std::int64_t kDomState = 1;          ///< 0 ok, 1 crashed
inline constexpr std::int64_t kDomNumVcpus = 2;
inline constexpr std::int64_t kDomSharedInfo = 3;     ///< ptr
inline constexpr std::int64_t kDomTotPages = 4;
inline constexpr std::int64_t kDomMaxPages = 5;
inline constexpr std::int64_t kDomIsPrivileged = 6;   ///< 1 for Dom0
inline constexpr std::int64_t kDomGuestRam = 7;       ///< ptr
inline constexpr std::int64_t kDomVmAssist = 8;
inline constexpr std::int64_t kDomGrantCount = 9;
inline constexpr std::int64_t kDomHvmParams = 10;     ///< 4 words (10..13)
inline constexpr std::int64_t kDomGrantTable = 16;    ///< 16 words
inline constexpr std::int64_t kDomEvtchnVcpu = 32;    ///< 16 words: port->vcpu

inline constexpr std::int64_t kNumGrantEntries = 16;
inline constexpr std::int64_t kNumEvtchnPorts = 16;

// ---------------------------------------------------------------------------
// VCPU struct fields.
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kVcpuId = 0;
inline constexpr std::int64_t kVcpuDomain = 1;        ///< ptr to domain
inline constexpr std::int64_t kVcpuState = 2;         ///< see VcpuState
inline constexpr std::int64_t kVcpuSaveGprs = 3;      ///< 16 words rax..r15
inline constexpr std::int64_t kVcpuSaveRip = 19;
inline constexpr std::int64_t kVcpuSaveRsp = 20;
inline constexpr std::int64_t kVcpuSaveRflags = 21;
inline constexpr std::int64_t kVcpuPendingEvents = 22;
inline constexpr std::int64_t kVcpuRunstateTime = 23; ///< 4 words (23..26)
inline constexpr std::int64_t kVcpuTimeVersion = 27;
inline constexpr std::int64_t kVcpuTimerDeadline = 28;
inline constexpr std::int64_t kVcpuSegBase = 29;
inline constexpr std::int64_t kVcpuCallback = 30;     ///< event callback rip
inline constexpr std::int64_t kVcpuNmiCallback = 31;
inline constexpr std::int64_t kVcpuTrapTable = 32;    ///< 19 words (32..50)
inline constexpr std::int64_t kVcpuGdt = 51;          ///< 8 words (51..58)

/// VCPU scheduling states.
inline constexpr std::int64_t kVcpuStateRunning = 0;
inline constexpr std::int64_t kVcpuStateBlocked = 1;
inline constexpr std::int64_t kVcpuStateIdle = 2;

// ---------------------------------------------------------------------------
// Shared-info page fields (per domain, guest visible).
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kShVersion = 0;    ///< time version counter
inline constexpr std::int64_t kShTscStamp = 1;
inline constexpr std::int64_t kShSystemTime = 2;
inline constexpr std::int64_t kShWcSec = 3;
inline constexpr std::int64_t kShWcNsec = 4;
inline constexpr std::int64_t kShTscMul = 5;
inline constexpr std::int64_t kShEvtchnPending = 8;
inline constexpr std::int64_t kShEvtchnMask = 9;
inline constexpr std::int64_t kShArchFlags = 10;

// ---------------------------------------------------------------------------
// Guest RAM layout (per domain, offsets within its kGuestRamStride slot).
// Subranges carry the semantic class of whatever the hypervisor writes
// there (see OutputClass below).
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kGuestAppData = 0x000;    ///< 0x000..0x07f
inline constexpr std::int64_t kGuestTimeArea = 0x080;   ///< 0x080..0x0ff: time
                                                        ///< values exported to
                                                        ///< the guest
inline constexpr std::int64_t kGuestAppPtrs = 0x100;    ///< 0x100..0x1ff
inline constexpr std::int64_t kGuestKernData = 0x200;   ///< 0x200..0x2ff
inline constexpr std::int64_t kGuestReqBuffer = 0x300;  ///< 0x300..0x3ff

// Guest kernel-data subareas (offsets within the domain's RAM slot).
inline constexpr std::int64_t kGuestPageTable = kGuestKernData + 0x00;  ///< 16
inline constexpr std::int64_t kGuestExcFrame = kGuestKernData + 0x10;   ///< 4
inline constexpr std::int64_t kGuestPinned = kGuestKernData + 0x14;
inline constexpr std::int64_t kGuestMmuWindow = kGuestKernData + 0x40;  ///< 64

// ---------------------------------------------------------------------------
// Address helpers.
// ---------------------------------------------------------------------------

constexpr Addr domain_addr(int dom) {
  return kDomainBase + static_cast<Addr>(dom) * kDomainStride;
}
constexpr Addr vcpu_addr(int vcpu) {
  return kVcpuBase + static_cast<Addr>(vcpu) * kVcpuStride;
}
constexpr Addr shared_info_addr(int dom) {
  return kSharedBase + static_cast<Addr>(dom) * kSharedStride;
}
constexpr Addr guest_ram_addr(int dom) {
  return kGuestRamBase + static_cast<Addr>(dom) * kGuestRamStride;
}

// ---------------------------------------------------------------------------
// Semantic classification of persistent state, for fault-consequence
// analysis.  See DESIGN.md Section 5.
// ---------------------------------------------------------------------------

enum class OutputClass : std::uint8_t {
  HvGlobal,        ///< hypervisor-internal persistent state
  GuestControl,    ///< guest rip/rsp/rflags, iret frames
  GuestKernelData, ///< trap tables, event channels, page mappings
  AppPointer,      ///< pointers/frame numbers the app dereferences
  AppData,         ///< plain data values consumed by the app
  TimeValue,       ///< time-related values (Table II's dominant class)
};

std::string_view output_class_name(OutputClass c);

/// Classifies a persistent-state address.  `num_domains`/`num_vcpus` bound
/// the live structures.  Addresses outside every persistent structure
/// (e.g. the stack) are not guest-visible and return false.
bool classify_address(Addr a, int num_domains, int num_vcpus,
                      OutputClass& out, int& domain);

}  // namespace xentry::hv::layout
