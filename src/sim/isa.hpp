// Instruction set of the simulated machine.
//
// The ISA is deliberately small but covers everything the microvisor needs:
// register moves, ALU ops, loads/stores with base+displacement addressing,
// compare/test, conditional branches, call/ret with a real stack, and a few
// system instructions (rdtsc, hlt).  Software assertions are first-class
// opcodes so the runtime-detection technique of the paper (Section III-A,
// Listings 1 and 2) has a direct machine-level encoding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace xentry::sim {

enum class Opcode : std::uint8_t {
  Nop = 0,

  // Data movement.
  MovRR,   ///< r1 = r2
  MovRI,   ///< r1 = imm
  Load,    ///< r1 = mem[r2 + imm]
  Store,   ///< mem[r1 + imm] = r2
  Push,    ///< mem[--rsp] = r1
  Pop,     ///< r1 = mem[rsp++]

  // ALU, register-register and register-immediate forms.  All update flags.
  AddRR, AddRI,
  SubRR, SubRI,
  MulRR,
  DivR,    ///< rax = rax / r1, rdx = rax % r1; #DE when r1 == 0
  AndRR, AndRI,
  OrRR,  OrRI,
  XorRR, XorRI,
  ShlRI, ShrRI,
  ShlRR, ShrRR,  ///< shift r1 by (r2 & 63)
  Neg,   Not,
  Inc,   Dec,

  // Flag-setting comparisons (do not write a destination).
  CmpRR, CmpRI,
  TestRR, TestRI,

  // Control flow.  Branch targets are absolute instruction addresses.
  Jmp,
  JmpR,    ///< indirect jump through r1
  Je, Jne, Jl, Jle, Jg, Jge, Jb, Jae,
  Call,    ///< push return address, jump to imm
  Ret,     ///< pop return address

  // System.
  Rdtsc,   ///< r1 = current timestamp counter (monotonic, advances per step)
  Hlt,     ///< end of hypervisor execution: the VM-entry gate

  // Software assertions (paper Section III-A).  On violation they raise
  // TrapKind::AssertFailed carrying the assertion id in Instruction::aux.
  AssertLeRI,  ///< assert r1 <= imm   (signed)
  AssertGeRI,  ///< assert r1 >= imm   (signed)
  AssertEqRI,  ///< assert r1 == imm
  AssertNeRI,  ///< assert r1 != imm
  AssertEqRR,  ///< assert r1 == r2
  AssertLtRR,  ///< assert r1 <  r2   (unsigned)

  // Explicitly invalid instruction; fetching one raises #UD.  Used to pad
  // gaps between handler bodies so a corrupted rip that lands inside the
  // code region but between functions faults realistically.
  Ud,
};

/// One decoded instruction.  Programs are stored pre-decoded; rip indexes
/// instruction slots directly (one slot per address unit).
struct Instruction {
  Opcode op = Opcode::Nop;
  Reg r1 = Reg::rax;
  Reg r2 = Reg::rax;
  std::int64_t imm = 0;
  std::uint32_t aux = 0;  ///< assertion id for Assert* opcodes
  /// Micro-architectural macro-op fusion hint, set by Program at assembly
  /// time (never by the Assembler): nonzero when this slot is a Cmp*/Test*
  /// whose immediate successor is a fusable conditional jump.  Not part of
  /// the architectural instruction encoding; occupies tail padding and is
  /// last so positional aggregate initialization stays unchanged.
  std::uint8_t fused = 0;
};

/// Static classification used by the performance counters.
constexpr bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::Jmp: case Opcode::JmpR:
    case Opcode::Je: case Opcode::Jne:
    case Opcode::Jl: case Opcode::Jle:
    case Opcode::Jg: case Opcode::Jge:
    case Opcode::Jb: case Opcode::Jae:
    case Opcode::Call: case Opcode::Ret:
      return true;
    default:
      return false;
  }
}

/// Instructions whose execution performs a memory read.
constexpr bool is_mem_load(Opcode op) {
  return op == Opcode::Load || op == Opcode::Pop || op == Opcode::Ret;
}

/// Instructions whose execution performs a memory write.
constexpr bool is_mem_store(Opcode op) {
  return op == Opcode::Store || op == Opcode::Push || op == Opcode::Call;
}

/// Direct conditional branches: legal macro-op fusion tails.
constexpr bool is_cond_branch(Opcode op) {
  switch (op) {
    case Opcode::Je: case Opcode::Jne:
    case Opcode::Jl: case Opcode::Jle:
    case Opcode::Jg: case Opcode::Jge:
    case Opcode::Jb: case Opcode::Jae:
      return true;
    default:
      return false;
  }
}

/// Flag-setting compare/test instructions: legal macro-op fusion heads.
/// They write only rflags and cannot trap, so a fused pair has exactly the
/// architectural effects of executing the two instructions back to back.
constexpr bool is_fusable_head(Opcode op) {
  switch (op) {
    case Opcode::CmpRR: case Opcode::CmpRI:
    case Opcode::TestRR: case Opcode::TestRI:
      return true;
    default:
      return false;
  }
}

constexpr bool is_assertion(Opcode op) {
  switch (op) {
    case Opcode::AssertLeRI: case Opcode::AssertGeRI:
    case Opcode::AssertEqRI: case Opcode::AssertNeRI:
    case Opcode::AssertEqRR: case Opcode::AssertLtRR:
      return true;
    default:
      return false;
  }
}

std::string_view opcode_name(Opcode op);

/// Human-readable rendering for traces and debugging.
std::string disassemble(const Instruction& insn);

/// Which architectural registers an instruction reads, as a bitmask indexed
/// by Reg.  Used by the fault injector to decide whether an injected flip
/// was *activated* (register read before being overwritten).
std::uint32_t regs_read(const Instruction& insn);

/// Which architectural registers an instruction writes, as a bitmask.
std::uint32_t regs_written(const Instruction& insn);

constexpr std::uint32_t reg_bit(Reg r) {
  return 1u << static_cast<unsigned>(r);
}

}  // namespace xentry::sim
