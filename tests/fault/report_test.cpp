#include "fault/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fault/campaign.hpp"

namespace xentry::fault {
namespace {

std::vector<InjectionRecord> sample_records() {
  CampaignConfig cfg;
  cfg.injections = 300;
  cfg.seed = 9;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // no model installed
  return run_campaign(cfg).records;
}

TEST(ReportTest, CsvHasHeaderAndOneRowPerRecord) {
  const auto records = sample_records();
  std::ostringstream os;
  write_records_csv(os, records);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, records.size() + 1);
  EXPECT_EQ(csv.substr(0, 7), "reason,");
  // Every row has the full column count.
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  const auto commas = [](const std::string& l) {
    return std::count(l.begin(), l.end(), ',');
  };
  const auto header_commas = commas(line);
  EXPECT_EQ(header_commas, 21);
  while (std::getline(is, line)) {
    EXPECT_EQ(commas(line), header_commas);
  }
}

TEST(ReportTest, CsvIsDeterministic) {
  const auto a = sample_records();
  const auto b = sample_records();
  std::ostringstream oa, ob;
  write_records_csv(oa, a);
  write_records_csv(ob, b);
  EXPECT_EQ(oa.str(), ob.str());
}

TEST(ReportTest, SummaryMentionsAllSections) {
  const auto records = sample_records();
  const std::string s = summarize(records);
  EXPECT_NE(s.find("manifested"), std::string::npos);
  EXPECT_NE(s.find("coverage"), std::string::npos);
  EXPECT_NE(s.find("consequences"), std::string::npos);
  EXPECT_NE(s.find("latency p50/p95"), std::string::npos);
}

TEST(ReportTest, EmptyRecordsSafe) {
  std::ostringstream os;
  write_records_csv(os, {});
  EXPECT_NE(os.str().find("reason,"), std::string::npos);
  EXPECT_NE(summarize({}).find("injections: 0"), std::string::npos);
}

}  // namespace
}  // namespace xentry::fault
