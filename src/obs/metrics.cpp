#include "obs/metrics.hpp"

#include <ostream>

namespace xentry::obs {

namespace {

/// map::operator[] with heterogeneous lookup (no temporary string on hit).
template <typename Map>
typename Map::mapped_type& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

template <typename Map>
const typename Map::mapped_type* find_only(const Map& map,
                                           std::string_view name) {
  auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Log2Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_only(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_only(gauges_, name);
}

const Log2Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_only(histograms_, name);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].merge_from(c);
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].merge_from(g);
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge_from(h);
  }
}

namespace {

/// Metric names are identifiers by convention, but export must stay valid
/// JSON for any name.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << c.value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << g.value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": {\"count\": " << h.count() << ", \"sum\": " << h.sum();
    if (h.count() > 0) {
      os << ", \"min\": " << h.min() << ", \"max\": " << h.max();
    }
    os << ", \"buckets\": {";
    bool bfirst = true;
    for (int i = 0; i < Log2Histogram::kNumBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      if (!bfirst) os << ", ";
      bfirst = false;
      os << '"' << Log2Histogram::bucket_lower_bound(i) << '"' << ": "
         << h.bucket(i);
    }
    os << "}}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace xentry::obs
