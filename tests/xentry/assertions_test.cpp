#include "xentry/assertions.hpp"

#include <gtest/gtest.h>

namespace xentry {
namespace {

TEST(AssertionRegistryTest, BuiltInsRegistered) {
  AssertionRegistry reg;
  EXPECT_EQ(reg.size(),
            static_cast<std::size_t>(hv::kAssertMaxId - hv::kAssertTrapVector));
  EXPECT_TRUE(reg.known(hv::kAssertTrapVector));
  EXPECT_TRUE(reg.known(hv::kAssertIdleVcpu));
  EXPECT_EQ(reg.description(hv::kAssertIdleVcpu),
            "is_idle_vcpu_before_idle");
}

TEST(AssertionRegistryTest, UnknownIdHasFallbackDescription) {
  AssertionRegistry reg;
  EXPECT_FALSE(reg.known(9999));
  EXPECT_EQ(reg.description(9999), "(unregistered assertion)");
}

TEST(AssertionRegistryTest, CustomRegistrationAndDuplicates) {
  AssertionRegistry reg;
  reg.register_assertion(500, "my custom invariant");
  EXPECT_TRUE(reg.known(500));
  EXPECT_EQ(reg.description(500), "my custom invariant");
  EXPECT_THROW(reg.register_assertion(500, "again"), std::invalid_argument);
  EXPECT_THROW(reg.register_assertion(hv::kAssertIdleVcpu, "clash"),
               std::invalid_argument);
}

TEST(AssertionRegistryTest, RejectsHandRegisteredIdsInDerivedPartition) {
  AssertionRegistry reg;
  EXPECT_THROW(reg.register_assertion(analysis::kDerivedAssertBase, "x"),
               std::invalid_argument);
  EXPECT_THROW(reg.register_assertion(analysis::kDerivedAssertBase + 17, "x"),
               std::invalid_argument);
  // The last id below the partition is still fair game.
  EXPECT_NO_THROW(
      reg.register_assertion(analysis::kDerivedAssertBase - 1, "edge"));
}

TEST(AssertionRegistryTest, DerivedRegistrationPartitioned) {
  AssertionRegistry reg;
  analysis::DerivedAssertion d;
  d.id = analysis::kDerivedAssertBase + 3;
  d.description = "derived: rax in [0, 8]";
  reg.register_derived(d);
  EXPECT_TRUE(reg.known(d.id));
  EXPECT_EQ(reg.description(d.id), d.description);
  // Re-installing artifacts re-registers: same id replaces, no throw.
  d.description = "derived: rax in [0, 4]";
  EXPECT_NO_THROW(reg.register_derived(d));
  EXPECT_EQ(reg.description(d.id), d.description);
  // Derived ids below the partition are analyzer bugs: reject loudly.
  d.id = 25;
  EXPECT_THROW(reg.register_derived(d), std::invalid_argument);
}

TEST(AssertionRegistryTest, FireCounting) {
  AssertionRegistry reg;
  EXPECT_EQ(reg.total_fires(), 0u);
  reg.record_fire(hv::kAssertIdleVcpu);
  reg.record_fire(hv::kAssertIdleVcpu);
  reg.record_fire(hv::kAssertEvtchnPort);
  reg.record_fire(4242);  // unknown ids tracked too
  EXPECT_EQ(reg.fires(hv::kAssertIdleVcpu), 2u);
  EXPECT_EQ(reg.fires(hv::kAssertEvtchnPort), 1u);
  EXPECT_EQ(reg.fires(4242), 1u);
  EXPECT_EQ(reg.total_fires(), 4u);
}

TEST(AssertionRegistryTest, RowsSortedWithFireCounts) {
  AssertionRegistry reg;
  reg.record_fire(hv::kAssertIdleVcpu);
  auto rows = reg.rows();
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].id, rows[i].id);
  }
  bool found = false;
  for (const auto& r : rows) {
    if (r.id == hv::kAssertIdleVcpu) {
      EXPECT_EQ(r.fires, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace xentry
