// Fault-outcome taxonomy, mirroring the paper's evaluation vocabulary.
//
// Section II separates *short latency* errors (contained in host mode:
// hypervisor crash/hang before VM entry) from *long latency* errors
// (propagating across VM entry).  Section V-E refines the long-latency
// consequences into one-VM failure, all-VM failure, APP crash and APP SDC;
// Section VI's Table II categorizes the undetected residue.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "hv/machine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/forensics.hpp"
#include "xentry/framework.hpp"

namespace xentry::fault {

enum class Consequence : std::uint8_t {
  /// Non-activated or benign: no failure, no corruption.
  Masked = 0,
  /// Short-latency: a host-mode trap would halt the hypervisor.
  HypervisorCrash,
  /// Short-latency: the hypervisor hung (watchdog budget exhausted).
  HypervisorHang,
  /// Long-latency: hypervisor-internal or Dom0 state corrupted; every VM
  /// is affected.
  AllVmFailure,
  /// Long-latency: one guest's control state or kernel data corrupted.
  OneVmFailure,
  /// Long-latency: an application-visible pointer corrupted; the app
  /// crashes (segfault-class).
  AppCrash,
  /// Long-latency: application-visible data silently corrupted; the app
  /// completes with wrong results.  The hardest class (Section V-E).
  AppSdc,
};

/// Number of Consequence values (array-indexing helper).
inline constexpr std::size_t kNumConsequences = 7;

std::string_view consequence_name(Consequence c);

/// Inverse of consequence_name; nullopt for unknown names.  Keeps the
/// exported vocabulary round-trippable (CSV/JSONL consumers feed names
/// back into analysis tooling).
std::optional<Consequence> consequence_from_name(std::string_view name);

/// True for consequences that crossed VM entry (the paper's long-latency
/// errors, Fig. 9's population).
constexpr bool is_long_latency(Consequence c) {
  return c == Consequence::AllVmFailure || c == Consequence::OneVmFailure ||
         c == Consequence::AppCrash || c == Consequence::AppSdc;
}

/// True for errors that manifested at all (Fig. 8's population: the
/// ~17,700 of 30,000 injections that caused failures or corruption).
constexpr bool is_manifested(Consequence c) {
  return c != Consequence::Masked;
}

/// Why an undetected fault escaped (Table II).
enum class UndetectedClass : std::uint8_t {
  NotApplicable = 0,  ///< detected, or masked
  MisClassified,      ///< transition detector saw it and judged it correct
  StackValues,        ///< corruption travelled through stack values
  TimeValues,         ///< corruption only in time-related values
  OtherValues,        ///< other pure-data corruption
};

std::string_view undetected_class_name(UndetectedClass c);

/// Inverse of undetected_class_name; nullopt for unknown names.
std::optional<UndetectedClass> undetected_class_from_name(
    std::string_view name);

/// Complete record of one injection experiment.
struct InjectionRecord {
  hv::ExitReason reason;
  std::uint64_t activation_seed = 0;
  int vcpu = 0;
  hv::Injection injection;

  bool injected = false;
  bool activated = false;
  Consequence consequence = Consequence::Masked;

  bool detected = false;
  Technique technique = Technique::None;
  /// Dynamic instructions between error activation and detection.
  std::uint64_t latency = 0;

  sim::TrapKind trap = sim::TrapKind::None;
  std::uint32_t assert_id = 0;
  bool trace_diverged = false;
  UndetectedClass undetected = UndetectedClass::NotApplicable;

  FeatureVector features;

  /// Importance-sampling reweighting (src/fault/sampler.hpp).  `weight` is
  /// the probability mass the executed run represents under the original
  /// proposal; `masked_weight` is the slot's provably-masked mass attributed
  /// to Masked without execution.  weight + masked_weight == 1 under
  /// importance sampling; weight == 1, masked_weight == 0 under uniform
  /// sampling, where weighted_rates() reduces to plain counts.  Derived
  /// metadata: excluded from the determinism digest (like blackbox), which
  /// hashes only the executed record stream.
  double weight = 1.0;
  double masked_weight = 0.0;

  /// Flight-recorder dump (oldest VM exit first), captured automatically
  /// when the outcome is SDC / crash class and a flight recorder is
  /// attached (obs::Options::flight_recorder).  Postmortem payload only:
  /// excluded from the determinism digest, so records stay bit-identical
  /// across telemetry modes.
  std::vector<obs::FlightFrame> blackbox;

  /// Lockstep-replay evidence (obs::Options::forensics): first
  /// architectural divergence, taint map, and evidence-based escape
  /// attribution.  Like `blackbox`, excluded from the determinism digest
  /// — `undetected` always keeps the heuristic value, and consumers read
  /// the evidence-based class through effective_undetected().
  std::optional<obs::ForensicsRecord> forensics;
};

/// The escape class analysis should use: the replay-evidence attribution
/// when forensics ran, the heuristic otherwise.  The digested `undetected`
/// field is never rewritten, so record digests stay bit-identical whether
/// forensics ran or not.
inline UndetectedClass effective_undetected(const InjectionRecord& r) {
  return r.forensics.has_value()
             ? static_cast<UndetectedClass>(r.forensics->attributed)
             : r.undetected;
}

/// True for outcomes the forensics replay investigates: silent data
/// corruption and app crashes always (Fig. 9's propagation population),
/// plus anything manifested the detectors missed (Table II's escapes).
constexpr bool needs_forensics(Consequence c, bool detected) {
  return c == Consequence::AppSdc || c == Consequence::AppCrash ||
         (is_manifested(c) && !detected);
}

/// True for the outcomes whose anatomy the flight recorder preserves
/// (Table 2-style postmortems: silent corruption and crash classes).
constexpr bool is_blackbox_worthy(Consequence c) {
  return c == Consequence::AppSdc || c == Consequence::AppCrash ||
         c == Consequence::HypervisorCrash || c == Consequence::HypervisorHang;
}

}  // namespace xentry::fault
