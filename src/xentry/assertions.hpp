// Software-assertion registry (paper Section III-A).
//
// Xentry leverages assertions compiled into the hypervisor — boundary
// checks on values with clearly defined limits (Listing 1) and condition
// checks critical to correct execution (Listing 2).  The registry gives
// each assertion id a description and keeps firing statistics so reports
// can say *which* invariant a soft error violated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "hv/microvisor.hpp"

namespace xentry {

class AssertionRegistry {
 public:
  /// Builds the registry for the microvisor's built-in assertion set.
  AssertionRegistry();

  /// Registers a custom assertion id (for extensions).  Throws on
  /// duplicates and on ids inside the reserved derived partition
  /// ([analysis::kDerivedAssertBase, ...): those ids belong to the
  /// static analyzer and collide across analysis runs otherwise).
  void register_assertion(std::uint32_t id, std::string description);

  /// Registers an analyzer-derived assertion.  Throws when the id lies
  /// outside the reserved partition; re-registering the same id replaces
  /// the description (artifacts may be re-installed).
  void register_derived(const analysis::DerivedAssertion& derived);

  bool known(std::uint32_t id) const { return entries_.count(id) != 0; }
  const std::string& description(std::uint32_t id) const;
  std::size_t size() const { return entries_.size(); }

  /// Records that assertion `id` fired; unknown ids are tracked too (a
  /// corrupted aux field is itself evidence of a fault).
  void record_fire(std::uint32_t id) { ++fires_[id]; }
  std::uint64_t fires(std::uint32_t id) const;
  std::uint64_t total_fires() const;

  /// (id, description, fires) rows sorted by id, for reports.
  struct Row {
    std::uint32_t id;
    std::string description;
    std::uint64_t fires;
  };
  std::vector<Row> rows() const;

 private:
  std::map<std::uint32_t, std::string> entries_;
  std::map<std::uint32_t, std::uint64_t> fires_;
};

}  // namespace xentry
