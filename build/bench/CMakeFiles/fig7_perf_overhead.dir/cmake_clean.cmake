file(REMOVE_RECURSE
  "CMakeFiles/fig7_perf_overhead.dir/fig7_perf_overhead.cpp.o"
  "CMakeFiles/fig7_perf_overhead.dir/fig7_perf_overhead.cpp.o.d"
  "fig7_perf_overhead"
  "fig7_perf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
