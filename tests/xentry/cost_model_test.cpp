#include "xentry/cost_model.hpp"

#include <gtest/gtest.h>

namespace xentry {
namespace {

TEST(CostModelTest, RuntimeOnlyIsAssertionsOnly) {
  CostParams p;
  ActivationCost c = activation_cost(p, 5, 8);
  EXPECT_DOUBLE_EQ(c.runtime_only_cycles, 5 * p.cycles_per_assertion);
  EXPECT_GT(c.with_transition_cycles, c.runtime_only_cycles);
}

TEST(CostModelTest, TransitionCostIncludesAllComponents) {
  CostParams p;
  ActivationCost c = activation_cost(p, 0, 10);
  EXPECT_DOUBLE_EQ(c.with_transition_cycles,
                   p.interception_cycles + p.counter_program_cycles +
                       p.counter_read_cycles +
                       10 * p.cycles_per_comparison);
}

TEST(CostModelTest, OverheadScalesLinearlyWithRate) {
  CostParams p;
  const double o1 = overhead_fraction(p, 10000, 200);
  const double o2 = overhead_fraction(p, 20000, 200);
  EXPECT_NEAR(o2, 2 * o1, 1e-12);
  // 10K activations/s at ~200 cycles on a 2.13 GHz core: well under 1%.
  EXPECT_LT(o1, 0.01);
}

TEST(CostModelTest, PaperScaleSanity) {
  // The paper's worst case: postmark with maximum overhead 11.7%.  Even a
  // pessimistic rate x cost combination stays in that order of magnitude.
  CostParams p;
  const double worst = overhead_fraction(p, 300000, 800);
  EXPECT_GT(worst, 0.05);
  EXPECT_LT(worst, 0.20);
}

}  // namespace
}  // namespace xentry
