#include "analysis/cfg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/assembler.hpp"

namespace xentry::analysis {
namespace {

using sim::Addr;
using sim::Assembler;
using sim::Opcode;
using sim::Program;
using sim::Reg;

/// True when `from`'s successor list contains the block starting at
/// `leader`.
bool has_succ_at(const ControlFlowGraph& cfg, std::uint32_t from,
                 Addr leader) {
  const std::uint32_t to = cfg.block_at(leader);
  if (to == kNoBlock || cfg.blocks[to].first != leader) return false;
  const auto& s = cfg.blocks[from].succs;
  return std::find(s.begin(), s.end(), to) != s.end();
}

TEST(CfgTest, SingleBlockFunction) {
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 42);
  as.hlt();
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].first, 0u);
  EXPECT_EQ(cfg.blocks[0].last, 1u);
  EXPECT_TRUE(cfg.blocks[0].is_function_entry);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());  // Hlt has no edges
  ASSERT_EQ(cfg.roots.size(), 1u);
  EXPECT_EQ(cfg.roots[0], 0u);
  EXPECT_EQ(cfg.block_at(0), 0u);
  EXPECT_EQ(cfg.block_at(1), 0u);
  EXPECT_EQ(cfg.block_at(2), kNoBlock);  // out of range
}

TEST(CfgTest, EmptyProgram) {
  Assembler as(0);
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  EXPECT_TRUE(cfg.blocks.empty());
  EXPECT_TRUE(cfg.roots.empty());
  EXPECT_EQ(cfg.block_at(0), kNoBlock);
}

TEST(CfgTest, PaddingBelongsToNoBlock) {
  Assembler as(0);
  as.global("main");
  as.hlt();      // 0
  as.pad_ud(2);  // 1, 2
  as.global("aux");
  as.hlt();  // 3
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_EQ(cfg.block_at(1), kNoBlock);
  EXPECT_EQ(cfg.block_at(2), kNoBlock);
  ASSERT_NE(cfg.block_at(3), kNoBlock);
  EXPECT_TRUE(cfg.blocks[cfg.block_at(3)].is_function_entry);
}

TEST(CfgTest, CallAndReturnEdges) {
  Assembler as(100);
  as.global("main");
  as.movi(Reg::rax, 1);  // 100
  as.call("leaf");       // 101
  as.hlt();              // 102 (return site)
  as.pad_ud(2);          // 103, 104
  as.global("leaf");
  as.ret();  // 105
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 3u);

  const std::uint32_t b_main = cfg.block_at(100);
  const std::uint32_t b_site = cfg.block_at(102);
  const std::uint32_t b_leaf = cfg.block_at(105);
  // Call edge goes to the callee entry, not the return site.
  EXPECT_TRUE(has_succ_at(cfg, b_main, 105));
  EXPECT_EQ(cfg.blocks[b_main].succs.size(), 1u);
  // Ret's successor set is the function's statically visible return sites.
  EXPECT_TRUE(has_succ_at(cfg, b_leaf, 102));
  EXPECT_EQ(cfg.blocks[b_leaf].succs.size(), 1u);
  // The return site is re-entered from outside straight-line flow: a root.
  ASSERT_EQ(cfg.roots.size(), 3u);
  EXPECT_NE(std::find(cfg.roots.begin(), cfg.roots.end(), b_site),
            cfg.roots.end());
}

TEST(CfgTest, SelfLoop) {
  Assembler as(0);
  as.movi(Reg::rcx, 50);  // 0 (imm outside the code image)
  const auto loop = as.here();
  as.dec(Reg::rcx);   // 1
  as.cmpi(Reg::rcx, 0);  // 2
  as.jne(loop);       // 3
  as.hlt();           // 4
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  const std::uint32_t b_loop = cfg.block_at(1);
  EXPECT_EQ(cfg.blocks[b_loop].first, 1u);
  EXPECT_EQ(cfg.blocks[b_loop].last, 3u);
  // The loop block is its own successor and predecessor.
  EXPECT_TRUE(has_succ_at(cfg, b_loop, 1));
  EXPECT_TRUE(has_succ_at(cfg, b_loop, 4));
  const auto& preds = cfg.blocks[b_loop].preds;
  EXPECT_NE(std::find(preds.begin(), preds.end(), b_loop), preds.end());
  // No symbols: the first block is the root.
  ASSERT_EQ(cfg.roots.size(), 1u);
  EXPECT_EQ(cfg.roots[0], cfg.block_at(0));
}

TEST(CfgTest, IndirectJumpWithUnknownTargetsAcceptsAny) {
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 3);  // 0 (also marks 3 as a landing site)
  as.jmp_reg(Reg::rax);  // 1
  as.pad_ud(1);          // 2
  as.hlt();              // 3
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const std::uint32_t b = cfg.block_at(1);
  EXPECT_TRUE(cfg.blocks[b].accept_any_succ);
  EXPECT_TRUE(cfg.blocks[b].succs.empty());
}

TEST(CfgTest, IndirectJumpWithResolvedTargets) {
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 3);  // 0
  as.jmp_reg(Reg::rax);  // 1
  as.pad_ud(1);          // 2
  as.hlt();              // 3
  const Program p = as.finish();
  CfgOptions opt;
  opt.indirect_targets.emplace(1, std::vector<Addr>{3});
  const ControlFlowGraph cfg = build_cfg(p, opt);
  const std::uint32_t b = cfg.block_at(1);
  EXPECT_FALSE(cfg.blocks[b].accept_any_succ);
  ASSERT_EQ(cfg.blocks[b].succs.size(), 1u);
  EXPECT_TRUE(has_succ_at(cfg, b, 3));
}

TEST(CfgTest, BranchTargetAtJccSuppressesFusionAndSplitsBlocks) {
  // A conditional branch that is itself a branch target must not fuse
  // with the Cmp before it, and the pair must land in separate blocks.
  Assembler as(0);
  const auto jcc = as.make_label();
  const auto exit = as.make_label();
  as.global("main");
  as.jmp(jcc);           // 0 -> 2
  as.cmpi(Reg::rax, 3);  // 1 (dead)
  as.bind(jcc);
  as.je(exit);  // 2
  as.hlt();     // 3
  as.bind(exit);
  as.hlt();  // 4
  const Program p = as.finish();
  EXPECT_FALSE(p.fused(1).fused);  // landing site between cmp and jcc
  const ControlFlowGraph cfg = build_cfg(p);
  EXPECT_NE(cfg.block_at(1), cfg.block_at(2));
  const std::uint32_t b_jcc = cfg.block_at(2);
  EXPECT_EQ(cfg.blocks[b_jcc].first, 2u);
  EXPECT_EQ(cfg.blocks[b_jcc].last, 2u);
  EXPECT_TRUE(has_succ_at(cfg, b_jcc, 4));
  EXPECT_TRUE(has_succ_at(cfg, b_jcc, 3));
}

TEST(CfgTest, FusedPairStaysInsideOneBlock) {
  Assembler as(0);
  const auto exit = as.make_label();
  as.global("main");
  as.movi(Reg::rax, 50);  // 0
  as.cmpi(Reg::rax, 7);   // 1
  as.je(exit);            // 2 (fuses with the cmp)
  as.hlt();               // 3
  as.bind(exit);
  as.hlt();  // 4
  const Program p = as.finish();
  EXPECT_TRUE(p.fused(1).fused);
  const ControlFlowGraph cfg = build_cfg(p);
  EXPECT_EQ(cfg.block_at(1), cfg.block_at(2));
}

TEST(CfgTest, IllegalDirectTargetFlagged) {
  Assembler as(0);
  as.emit_raw({Opcode::Jmp, Reg::rax, Reg::rax, 999, 0});
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].has_illegal_target);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
}

TEST(CfgTest, FallthroughIntoPaddingFlagged) {
  Assembler as(0);
  as.movi(Reg::rax, 50);  // 0, falls into the Ud below
  as.pad_ud(1);           // 1
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].falls_into_padding);
}

TEST(CfgTest, ProgramSignatureTracksContent) {
  const auto make = [](std::int64_t imm) {
    Assembler as(0);
    as.global("main");
    as.movi(Reg::rax, imm);
    as.hlt();
    return as.finish();
  };
  const Program a = make(42), b = make(42), c = make(43);
  EXPECT_EQ(program_signature(a), program_signature(b));
  EXPECT_NE(program_signature(a), program_signature(c));
}

TEST(CfgTest, BlockSignaturesDifferWithContent) {
  Assembler as(0);
  as.global("f");
  as.movi(Reg::rax, 50);  // block 0
  as.hlt();
  as.pad_ud(1);
  as.global("g");
  as.movi(Reg::rax, 51);  // block 1
  as.hlt();
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_NE(cfg.blocks[0].signature, cfg.blocks[1].signature);
}

TEST(CfgTest, ClassifyBranchTarget) {
  Assembler as(0);
  as.hlt();      // 0
  as.pad_ud(1);  // 1
  const Program p = as.finish();
  EXPECT_EQ(classify_branch_target(p, 0), TargetStatus::Ok);
  EXPECT_EQ(classify_branch_target(p, 1), TargetStatus::Padding);
  EXPECT_EQ(classify_branch_target(p, 2), TargetStatus::OutOfRange);
}

}  // namespace
}  // namespace xentry::analysis
