# Empty compiler generated dependencies file for fault_anatomy.
# This may be replaced when dependencies are built.
