#include "xentry/framework.hpp"

namespace xentry {

std::string_view technique_name(Technique t) {
  switch (t) {
    case Technique::None: return "undetected";
    case Technique::HardwareException: return "hw_exception";
    case Technique::SoftwareAssertion: return "sw_assertion";
    case Technique::VmTransition: return "vm_transition";
    case Technique::StackRedundancy: return "stack_redundancy";
  }
  return "?";
}

void Xentry::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr || !cfg_.obs.metrics) {
    metrics_ = {};
    return;
  }
  metrics_.observations = &registry->counter("xentry.observations");
  for (int t = 1; t < kNumTechniques; ++t) {
    std::string name = "xentry.detections.";
    name += technique_name(static_cast<Technique>(t));
    metrics_.detections[t] = &registry->counter(name);
  }
  metrics_.handler_length = &registry->histogram("xentry.handler_length");
  metrics_.detection_latency =
      &registry->histogram("xentry.detection_latency");
}

Observation Xentry::observe(hv::Machine& machine,
                            const hv::Activation& activation,
                            hv::RunOptions opts) {
  opts.arm_counters = cfg_.transition_detection;
  Observation obs;
  obs.run = machine.run(activation, opts);
  obs.features = FeatureVector::from(activation.reason, obs.run.counters);

  if (metrics_.observations != nullptr) {
    metrics_.observations->inc();
    metrics_.handler_length->observe(obs.run.steps);
  }

  if (!obs.run.reached_vm_entry) {
    // Host-mode trap: runtime detection territory.
    const sim::Trap& trap = obs.run.trap;
    if (cfg_.runtime_detection) {
      if (trap.kind == sim::TrapKind::StackCheck) {
        obs.detected = true;
        obs.technique = Technique::StackRedundancy;
        obs.detection_step = obs.run.trap_step;
      } else if (trap.kind == sim::TrapKind::AssertFailed) {
        registry_.record_fire(trap.aux);
        obs.detected = true;
        obs.technique = Technique::SoftwareAssertion;
        obs.detection_step = obs.run.trap_step;
      } else if (parser_.parse(trap) == ExceptionVerdict::Fatal) {
        obs.detected = true;
        obs.technique = Technique::HardwareException;
        obs.detection_step = obs.run.trap_step;
      }
    }
    record_detection_metrics(obs);
    return obs;
  }

  // VM entry: transition detection before the guest resumes.
  if (cfg_.transition_detection && detector_.has_model() &&
      detector_.flag(obs.features)) {
    obs.detected = true;
    obs.technique = Technique::VmTransition;
    obs.detection_step = obs.run.steps;
  }
  record_detection_metrics(obs);
  return obs;
}

void Xentry::record_detection_metrics(const Observation& obs) {
  if (metrics_.observations == nullptr || !obs.detected) return;
  obs::Counter* c = metrics_.detections[static_cast<int>(obs.technique)];
  if (c != nullptr) c->inc();
  // Activation-to-detection latency, the paper's Fig. 9/10 quantity.
  // Only meaningful when the fault bookkeeping saw an activation.
  if (obs.run.activated && obs.detection_step >= obs.run.activation_step) {
    metrics_.detection_latency->observe(obs.detection_step -
                                        obs.run.activation_step);
  }
}

}  // namespace xentry
