file(REMOVE_RECURSE
  "libxentry_hv.a"
)
