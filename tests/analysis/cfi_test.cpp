#include "analysis/cfi.hpp"

#include <gtest/gtest.h>

#include "hv/machine.hpp"
#include "hv/microvisor.hpp"
#include "sim/assembler.hpp"
#include "workloads/workload.hpp"

namespace xentry::analysis {
namespace {

using sim::Addr;
using sim::Assembler;
using sim::Program;
using sim::Reg;
using sim::Word;

std::array<Word, sim::kNumArchRegs> regs_with(unsigned reg, Word value) {
  std::array<Word, sim::kNumArchRegs> regs{};
  regs[reg] = value;
  return regs;
}

AnalysisArtifacts straight_line() {
  // 0: movi rax, 7   1: movi rbx, 50   2: hlt
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 7);
  as.movi(Reg::rbx, 50);
  as.hlt();
  return analyze_program(as.finish());
}

TEST(CfiTest, CleanTraceAndGatePass) {
  const AnalysisArtifacts art = straight_line();
  auto regs = regs_with(0, 7);
  regs[1] = 50;
  const CfiResult r = check_trace(art, {0, 1}, /*expected_entry=*/0,
                                  /*hlt_addr=*/2, &regs);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.edges_checked, 3u);  // entry + one step + virtual final edge
  EXPECT_EQ(r.ranges_checked, 2u);
}

TEST(CfiTest, BadEntryDetected) {
  const AnalysisArtifacts art = straight_line();
  const CfiResult r =
      check_trace(art, {1, 2}, /*expected_entry=*/0, kNoAddr, nullptr);
  EXPECT_EQ(r.kind, CfiResult::Kind::BadEntry);
  EXPECT_EQ(r.from, 0u);
  EXPECT_EQ(r.to, 1u);
}

TEST(CfiTest, SkippedInstructionIsWildEdge) {
  const AnalysisArtifacts art = straight_line();
  // 0 -> 2 inside the block skips slot 1: sequential flow violated.
  const CfiResult r =
      check_trace(art, {0, 2}, /*expected_entry=*/0, kNoAddr, nullptr);
  EXPECT_EQ(r.kind, CfiResult::Kind::WildEdge);
  EXPECT_EQ(r.step, 1u);
  EXPECT_EQ(r.from, 0u);
  EXPECT_EQ(r.to, 2u);
}

TEST(CfiTest, WildEdgeOnVirtualFinalStep) {
  const AnalysisArtifacts art = straight_line();
  // Trace ends at 0 but the gate is the Hlt at 2: the 0 -> 2 edge is wild.
  const CfiResult r =
      check_trace(art, {0}, /*expected_entry=*/0, /*hlt_addr=*/2, nullptr);
  EXPECT_EQ(r.kind, CfiResult::Kind::WildEdge);
  EXPECT_EQ(r.step, 1u);
}

TEST(CfiTest, DerivedRangeViolationDetected) {
  const AnalysisArtifacts art = straight_line();
  ASSERT_EQ(art.derived.size(), 2u);
  auto regs = regs_with(0, 8);  // rax must be exactly 7
  regs[1] = 50;
  const CfiResult r =
      check_trace(art, {0, 1}, /*expected_entry=*/0, /*hlt_addr=*/2, &regs);
  EXPECT_EQ(r.kind, CfiResult::Kind::DerivedRange);
  EXPECT_EQ(r.derived_id, kDerivedAssertBase);
  EXPECT_EQ(r.reg, 0u);
  EXPECT_EQ(r.value, 8);
  EXPECT_EQ(r.lo, 7);
  EXPECT_EQ(r.hi, 7);
}

TEST(CfiTest, CallReturnTraceAccepted) {
  Assembler as(100);
  as.global("main");
  as.movi(Reg::rax, 1);  // 100
  as.call("leaf");       // 101
  as.hlt();              // 102
  as.pad_ud(2);          // 103, 104
  as.global("leaf");
  as.ret();  // 105
  const AnalysisArtifacts art = analyze_program(as.finish());
  const CfiResult ok = check_trace(art, {100, 101, 105},
                                   /*expected_entry=*/100,
                                   /*hlt_addr=*/102, nullptr);
  EXPECT_TRUE(ok.ok());
  // Returning anywhere but the recorded return site is a wild edge.
  const CfiResult bad = check_trace(art, {100, 101, 105},
                                    /*expected_entry=*/100,
                                    /*hlt_addr=*/100, nullptr);
  EXPECT_EQ(bad.kind, CfiResult::Kind::WildEdge);
}

TEST(CfiTest, UnresolvedIndirectJumpAcceptsAnyValidTarget) {
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 3);  // 0
  as.jmp_reg(Reg::rax);  // 1
  as.pad_ud(1);          // 2
  as.hlt();              // 3
  const AnalysisArtifacts art = analyze_program(as.finish());
  EXPECT_TRUE(
      check_trace(art, {0, 1}, /*expected_entry=*/0, /*hlt_addr=*/3, nullptr)
          .ok());
  // ... but never a landing in padding.
  const CfiResult pad =
      check_trace(art, {0, 1, 2}, /*expected_entry=*/0, kNoAddr, nullptr);
  EXPECT_EQ(pad.kind, CfiResult::Kind::WildEdge);
}

TEST(CfiTest, ResolvedIndirectJumpRestrictsTargets) {
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 4);  // 0
  as.jmp_reg(Reg::rax);  // 1
  as.hlt();              // 2  (legal instruction, but not in the set)
  as.pad_ud(1);          // 3
  as.hlt();              // 4
  AnalyzeOptions opt;
  opt.cfg.indirect_targets.emplace(1, std::vector<Addr>{4});
  const AnalysisArtifacts art = analyze_program(as.finish(), opt);
  EXPECT_TRUE(
      check_trace(art, {0, 1}, /*expected_entry=*/0, /*hlt_addr=*/4, nullptr)
          .ok());
  const CfiResult off =
      check_trace(art, {0, 1}, /*expected_entry=*/0, /*hlt_addr=*/2, nullptr);
  EXPECT_EQ(off.kind, CfiResult::Kind::WildEdge);
}

TEST(CfiTest, EmptyTraceChecksGateOnly) {
  const AnalysisArtifacts art = straight_line();
  // Degenerate activation: nothing retired, gate is the entry itself.
  EXPECT_TRUE(check_trace(art, {}, /*expected_entry=*/0, kNoAddr, nullptr)
                  .ok());  // nothing to check at all
  const CfiResult r =
      check_trace(art, {}, /*expected_entry=*/0, /*hlt_addr=*/1, nullptr);
  EXPECT_EQ(r.kind, CfiResult::Kind::BadEntry);
}

// -- the shipped microvisor under analysis ---------------------------------

TEST(CfiMicrovisorTest, AnalyzesCleanInEveryConfiguration) {
  const hv::MicrovisorOptions configs[] = {
      {3, 1, true, false}, {3, 1, true, true},  {3, 1, false, false},
      {2, 1, true, false}, {4, 2, true, true},  {8, 1, true, false},
      {1, 1, true, false},
  };
  for (const hv::MicrovisorOptions& opt : configs) {
    const hv::Microvisor mv = hv::build_microvisor(opt);
    const AnalysisArtifacts art =
        analyze_program(mv.program, hv::analyze_options(mv));
    EXPECT_TRUE(art.verifier.ok()) << art.to_string();
    EXPECT_TRUE(art.stack_warnings.empty()) << art.to_string();
    EXPECT_EQ(art.finding_count(), 0u);
    EXPECT_GT(art.reachable_blocks(), 50u);
    // The multicall dispatch is resolved, so no block accepts any
    // successor: every edge in the runtime check is a real constraint.
    for (const BasicBlock& b : art.cfg.blocks) {
      EXPECT_FALSE(b.accept_any_succ);
    }
  }
}

TEST(CfiMicrovisorTest, FaultFreeRunsPassEveryCheck) {
  hv::Machine machine{hv::MicrovisorOptions{}};
  const AnalysisArtifacts art = analyze_program(
      machine.microvisor().program, hv::analyze_options(machine.microvisor()));
  ASSERT_TRUE(art.verifier.ok()) << art.to_string();

  wl::WorkloadProfile profile;
  for (const hv::ExitReason& r : hv::all_exit_reasons()) {
    profile.mix.emplace_back(r, 1.0);
  }
  wl::WorkloadGenerator gen(machine, profile, 42);
  std::vector<Addr> trace;
  int gated = 0;
  for (int i = 0; i < 400; ++i) {
    const hv::Activation act = gen.next();
    trace.clear();
    hv::RunOptions opts;
    opts.trace = &trace;
    const hv::RunResult run = machine.run(act, opts);
    ASSERT_TRUE(run.reached_vm_entry) << "activation " << i;
    ++gated;
    const CfiResult r = check_trace(
        art, trace, machine.handler_entry(act.reason),
        machine.cpu().reg(Reg::rip), &machine.cpu().regs());
    ASSERT_TRUE(r.ok()) << "activation " << i << ": kind "
                        << static_cast<int>(r.kind) << " at step " << r.step
                        << " (" << r.from << " -> " << r.to << ")";
    EXPECT_GT(r.edges_checked, 0u);
  }
  EXPECT_EQ(gated, 400);
}

TEST(CfiMicrovisorTest, DerivedAssertionsExistAndNeverFireFaultFree) {
  hv::Machine machine{hv::MicrovisorOptions{}};
  const AnalysisArtifacts art = analyze_program(
      machine.microvisor().program, hv::analyze_options(machine.microvisor()));
  // The analyzer proves at least some nontrivial gate invariants.
  EXPECT_FALSE(art.derived.empty());
  for (const DerivedAssertion& d : art.derived) {
    EXPECT_GE(d.id, kDerivedAssertBase);
    EXPECT_LE(d.lo, d.hi);
    EXPECT_FALSE(d.description.empty());
  }
}

}  // namespace
}  // namespace xentry::analysis
