// Ablation: the Section VI countermeasures the paper proposes for its
// undetected residue, implemented and measured.
//
//   baseline        — the paper's Xentry configuration
//   +time checks    — duplicated time reads in update_time
//   +shadow stack   — selective redundancy for pushed values
//   +both           — the hardened configuration
//
// Reported: Table II's escape classes and the coverage delta per
// configuration, plus the extra per-activation cost.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "xentry/cost_model.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Ablation: Section VI countermeasures");

  fault::TrainedDetector det = bench::train_paper_model();

  struct Config {
    const char* name;
    bool time_checks;
    bool shadow_stack;
  };
  const Config configs[] = {
      {"baseline", false, false},
      {"+time checks", true, false},
      {"+shadow stack", false, true},
      {"+both", true, true},
  };

  std::printf("%-15s %9s %7s | %6s %6s %6s %6s | %8s\n", "config",
              "coverage", "undet", "mis", "stack", "time", "other",
              "stk_red");
  for (const Config& c : configs) {
    fault::CampaignConfig cfg;
    cfg.injections = bench::scaled(30000);
    cfg.seed = 202;
    cfg.model = det.rules;
    cfg.workload = bench::pooled_benchmark_profile();
    cfg.machine.time_checks = c.time_checks;
    cfg.machine.shadow_stack = c.shadow_stack;
    const auto res = fault::run_campaign(cfg);
    const auto cov = fault::coverage_breakdown(res.records);
    const auto und = fault::undetected_breakdown(res.records);
    std::printf("%-15s %8.1f%% %6.1f%% | %5.0f%% %5.0f%% %5.0f%% %5.0f%% | %8zu\n",
                c.name, 100 * cov.coverage(),
                100 * cov.share(cov.undetected),
                100 * und.share(und.mis_classified),
                100 * und.share(und.stack_values),
                100 * und.share(und.time_values),
                100 * und.share(und.other_values), cov.stack_redundancy);
  }
  std::printf(
      "\nexpected shape: time checks shrink the time-value escapes, shadow\n"
      "stack shrinks the stack-value escapes (paper Section VI's proposed\n"
      "but unimplemented countermeasures), at a small per-push/pop cost.\n");
  return 0;
}
