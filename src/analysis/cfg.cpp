#include "analysis/cfg.hpp"

#include <algorithm>

namespace xentry::analysis {

namespace {

using sim::Addr;
using sim::Instruction;
using sim::Opcode;
using sim::Program;

bool is_direct_branch(Opcode op) {
  return op == Opcode::Jmp || op == Opcode::Call || sim::is_cond_branch(op);
}

/// Block terminators: the instruction transfers control somewhere other
/// than (only) the next slot, or stops execution.
bool ends_block(Opcode op) {
  return sim::is_branch(op) || op == Opcode::Hlt;
}

}  // namespace

TargetStatus classify_branch_target(const Program& program, Addr target) {
  if (!program.contains(target)) return TargetStatus::OutOfRange;
  if (program.at(target).op == Opcode::Ud) return TargetStatus::Padding;
  return TargetStatus::Ok;
}

std::uint64_t program_signature(const Program& program) {
  // One signature for every layer: the analysis artifacts, the campaign
  // staleness guards, and the threaded-code CompiledProgram cache all key
  // off the same sim-level hash.
  return sim::program_text_signature(program);
}

ControlFlowGraph build_cfg(const Program& program, const CfgOptions& options) {
  ControlFlowGraph cfg;
  cfg.base = program.base();
  cfg.code_size = program.size();
  cfg.landing = sim::compute_landing_sites(program);
  cfg.block_of.assign(program.size(), kNoBlock);
  if (program.empty()) return cfg;

  const Addr base = program.base();
  const std::size_t n = program.size();
  auto op_at = [&](std::size_t off) { return program.at(base + off).op; };

  std::vector<bool> is_symbol(n, false);
  for (const auto& [name, addr] : program.symbols()) {
    if (program.contains(addr)) is_symbol[addr - base] = true;
  }

  // Leaders: start of a non-padding run, any landing site, and the slot
  // after any branch or Hlt.
  std::vector<bool> leader(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (op_at(i) == Opcode::Ud) continue;
    leader[i] = i == 0 || op_at(i - 1) == Opcode::Ud || cfg.landing[i] ||
                ends_block(op_at(i - 1));
  }

  // Carve blocks and fill the per-slot index.
  for (std::size_t i = 0; i < n; ++i) {
    if (op_at(i) == Opcode::Ud) continue;
    std::size_t end = i;  // inclusive
    while (end + 1 < n && !ends_block(op_at(end)) &&
           op_at(end + 1) != Opcode::Ud && !leader[end + 1]) {
      ++end;
    }
    const auto idx = static_cast<std::uint32_t>(cfg.blocks.size());
    BasicBlock b;
    b.first = base + i;
    b.last = base + end;
    b.is_function_entry = is_symbol[i];
    std::uint64_t h = sim::kFnvOffsetBasis;
    for (std::size_t k = i; k <= end; ++k) {
      h = sim::instruction_fnv(h, program.at(base + k));
      cfg.block_of[k] = idx;
    }
    b.signature = h;
    cfg.blocks.push_back(std::move(b));
    i = end;
  }

  // Per-function return-target sets: return sites of direct calls to the
  // function's entry, plus every MovRI code immediate (manually pushed
  // return addresses are always materialized through MovRI in this ISA).
  // Function = greatest symbol at or before the Ret; Rets outside any
  // symbol see the return sites of every call.
  std::vector<Addr> symbol_addrs;
  for (const auto& [name, addr] : program.symbols()) {
    if (program.contains(addr)) symbol_addrs.push_back(addr);
  }
  std::sort(symbol_addrs.begin(), symbol_addrs.end());
  auto function_entry = [&](Addr a) -> Addr {
    auto it = std::upper_bound(symbol_addrs.begin(), symbol_addrs.end(), a);
    return it == symbol_addrs.begin() ? ~Addr{0} : *(it - 1);
  };
  std::map<Addr, std::vector<Addr>> return_sites;  // callee entry -> sites
  std::vector<Addr> all_return_sites;
  std::vector<Addr> movi_landings;
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& insn = program.at(base + i);
    if (insn.op == Opcode::Call &&
        classify_branch_target(program, static_cast<Addr>(insn.imm)) ==
            TargetStatus::Ok) {
      const Addr site = base + i + 1;
      if (program.contains(site) && program.at(site).op != Opcode::Ud) {
        return_sites[static_cast<Addr>(insn.imm)].push_back(site);
        all_return_sites.push_back(site);
      }
    }
    if (insn.op == Opcode::MovRI) {
      const auto imm = static_cast<Addr>(insn.imm);
      if (program.contains(imm) && program.at(imm).op != Opcode::Ud) {
        movi_landings.push_back(imm);
      }
    }
  }

  // Edges.
  auto add_edge = [&](std::uint32_t from, Addr target) {
    const std::uint32_t to = cfg.block_at(target);
    if (to == kNoBlock) return;
    BasicBlock& f = cfg.blocks[from];
    if (std::find(f.succs.begin(), f.succs.end(), to) == f.succs.end()) {
      f.succs.push_back(to);
      cfg.blocks[to].preds.push_back(from);
    }
  };
  for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    BasicBlock& b = cfg.blocks[bi];
    const Instruction& insn = program.at(b.last);
    const Addr next = b.last + 1;
    const bool next_is_padding =
        program.contains(next) && program.at(next).op == Opcode::Ud;
    if (is_direct_branch(insn.op)) {
      const auto target = static_cast<Addr>(insn.imm);
      if (classify_branch_target(program, target) == TargetStatus::Ok) {
        add_edge(bi, target);
      } else {
        b.has_illegal_target = true;
      }
      if (sim::is_cond_branch(insn.op)) {
        if (next_is_padding) {
          b.falls_into_padding = true;
        } else {
          add_edge(bi, next);
        }
      } else if (insn.op == Opcode::Call && next_is_padding) {
        // The call's return site is padding: the callee's Ret would fault.
        b.falls_into_padding = true;
      }
    } else if (insn.op == Opcode::JmpR) {
      auto it = options.indirect_targets.find(b.last);
      if (it == options.indirect_targets.end() || it->second.empty()) {
        b.accept_any_succ = true;
      } else {
        for (Addr t : it->second) add_edge(bi, t);
      }
    } else if (insn.op == Opcode::Ret) {
      const Addr fn = function_entry(b.last);
      const std::vector<Addr>* sites = &all_return_sites;
      if (auto it = return_sites.find(fn); it != return_sites.end()) {
        sites = &it->second;
      }
      for (Addr t : *sites) add_edge(bi, t);
      for (Addr t : movi_landings) add_edge(bi, t);
    } else if (insn.op != Opcode::Hlt) {
      // Plain block split by a leader, or last instruction of a run.
      if (next_is_padding || !program.contains(next)) {
        b.falls_into_padding = next_is_padding;
      } else {
        add_edge(bi, next);
      }
    }
  }

  // Roots: where control enters from outside the graph.
  std::vector<bool> is_root(cfg.blocks.size(), false);
  auto mark_root = [&](Addr a) {
    const std::uint32_t bi = cfg.block_at(a);
    if (bi != kNoBlock && cfg.blocks[bi].first == a) is_root[bi] = true;
  };
  for (Addr a : symbol_addrs) mark_root(a);
  for (Addr a : all_return_sites) mark_root(a);
  for (Addr a : movi_landings) mark_root(a);
  if (symbol_addrs.empty() && !cfg.blocks.empty()) is_root[0] = true;
  for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    if (is_root[bi]) cfg.roots.push_back(bi);
  }
  return cfg;
}

}  // namespace xentry::analysis
