#include "xentry/recovery_engine.hpp"

#include <gtest/gtest.h>

#include "fault/experiment.hpp"

namespace xentry {
namespace {

namespace L = hv::layout;

TEST(RecoveryEngineTest, CheckpointCoversCriticalData) {
  hv::Machine m;
  RecoveryEngine rec(m);
  EXPECT_FALSE(rec.has_checkpoint());
  rec.checkpoint(m.make_activation(hv::ExitReason::softirq(), 1));
  EXPECT_TRUE(rec.has_checkpoint());
  // HV globals + domain structs + vcpu structs (incl. idle).
  const std::size_t expected =
      L::kHvDataSize +
      static_cast<std::size_t>(m.num_domains()) * L::kDomainStride +
      static_cast<std::size_t>(m.num_vcpus() + 1) * L::kVcpuStride;
  EXPECT_EQ(rec.checkpoint_words(), expected);
  EXPECT_EQ(rec.stats().checkpoints, 1u);
}

TEST(RecoveryEngineTest, RecoverWithoutCheckpointThrows) {
  hv::Machine m;
  RecoveryEngine rec(m);
  EXPECT_THROW(rec.recover(), std::logic_error);
}

TEST(RecoveryEngineTest, RestoresCorruptedCriticalStateAndReruns) {
  hv::Machine m;
  RecoveryEngine rec(m);
  const auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::set_debugreg), 5, 0);
  rec.checkpoint(act);
  const sim::Word runq_before =
      m.memory().peek(L::kHvDataBase + L::kHvRunqCount);

  // Corrupt critical hypervisor data as a detected fault would have.
  m.memory().poke(L::kHvDataBase + L::kHvRunqCount, 0xdeadbeef);
  m.memory().poke(L::vcpu_addr(0) + L::kVcpuState, 0x77);

  const hv::RunResult res = rec.recover();
  EXPECT_TRUE(res.reached_vm_entry);
  EXPECT_EQ(rec.stats().recoveries, 1u);
  EXPECT_EQ(rec.stats().clean_reruns, 1u);
  // run() marks the activation's vcpu running and enqueues it; the
  // corrupted garbage must be gone.
  EXPECT_EQ(m.memory().peek(L::kHvDataBase + L::kHvRunqCount), runq_before);
  EXPECT_EQ(m.memory().peek(L::vcpu_addr(0) + L::kVcpuState),
            static_cast<sim::Word>(L::kVcpuStateRunning));
}

TEST(RecoveryEngineTest, RecoveryAfterDetectedInjectionRestoresGoldenState) {
  // Full loop: golden run, faulted run detected by a hardware exception,
  // recovery re-executes and must land in the golden post-state (the
  // fault struck before any guest-visible writes happened to diverge).
  hv::Machine golden, faulty;
  Xentry xentry;
  fault::InjectionExperiment exp(golden, faulty, xentry);
  const auto act = golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::xen_version), 9, 1);

  RecoveryEngine rec(faulty);
  rec.checkpoint(act);  // VM-exit side

  const hv::Injection inj{1, sim::Reg::rip, 45};  // guaranteed #PF
  const auto result = exp.run_one(act, inj);
  ASSERT_TRUE(result.record.detected);

  const hv::RunResult rerun = rec.recover();
  EXPECT_TRUE(rerun.reached_vm_entry);
  EXPECT_TRUE(hv::Machine::diff_persistent_state(golden, faulty).empty());
}

TEST(RecoveryEngineTest, HonestAboutResidualGuestCorruption) {
  // The checkpoint deliberately excludes guest RAM (the paper's scheme
  // copies only "critical hypervisor data"); corruption already written
  // to guest memory before detection is NOT undone.
  hv::Machine m;
  RecoveryEngine rec(m);
  const auto act = m.make_activation(hv::ExitReason::tasklet(), 2, 0);
  rec.checkpoint(act);
  const sim::Addr guest = L::guest_ram_addr(1) + L::kGuestAppData;
  m.memory().poke(guest, 0xbad);
  rec.recover();
  EXPECT_EQ(m.memory().peek(guest), 0xbadu);
}

}  // namespace
}  // namespace xentry
