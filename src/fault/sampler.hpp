// Exact-reweighted importance sampling over the vulnerability map.
//
// The bit-liveness analysis (src/analysis/bitlive.hpp) proves a large
// fraction of the (step, reg, bit) injection space masked.  Executing
// those injections is wasted work: the outcome is known.  The sampler
// keeps the campaign's *statistical answer* identical to uniform sampling
// while spending faulted runs only on bits that can matter:
//
//   - The candidate injection is drawn from the MAIN campaign RNG with
//     exactly the same draw sequence as uniform mode, so the workload /
//     golden-probe stream of every slot is bit-identical across modes.
//   - The slot's live mass m = P(draw lands on a live bit) is priced
//     exactly from the map and the slot's golden trace.
//   - A live candidate executes as drawn.  A provably-masked candidate is
//     replaced by a redraw from a per-shard AUXILIARY RNG, rejection-
//     sampled until it lands on a live bit — the executed injection is
//     distributed as the original proposal conditioned on liveness either
//     way.  The record carries weight = m for its observed class and
//     masked_weight = 1 - m attributed to Masked, so
//     rate(c) = (sum of weight over class-c records
//                + sum of masked_weight) / N          (Masked only)
//     is an unbiased estimate of the uniform-sampling rate (stratified
//     conditional estimation; see DESIGN.md section 5f).
//   - Slots whose live mass falls below `weight_floor` are not executed
//     at all: the whole slot is attributed to Masked analytically
//     (weight = 1, no faulted run).  Bias <= floor per affected slot.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "analysis/bitlive.hpp"
#include "hv/machine.hpp"
#include "sim/program.hpp"

namespace xentry::fault {

class ImportanceSampler {
 public:
  struct Proposal {
    hv::Injection injection{};
    /// P(the original proposal lands on a live bit), priced exactly from
    /// the map.  The executed record's weight; its masked_weight is the
    /// complement.
    double live_mass = 1.0;
    /// Skip the faulted run entirely and attribute the slot's whole mass
    /// to Masked (live mass below the floor, or rejection redraw
    /// exhausted).
    bool analytic = false;
  };

  /// `map` and `program` are borrowed and must outlive the sampler;
  /// `aux_seed` seeds the redraw stream (per shard, disjoint from the
  /// main campaign stream).
  ImportanceSampler(const analysis::VulnerabilityMap& map,
                    const sim::Program& program, double weight_floor,
                    std::uint64_t aux_seed);

  /// Uniform-branch proposal: consumes exactly the draws of
  /// InjectionExperiment::draw_injection from `main_rng`, then prices and
  /// (if needed) redraws from the auxiliary stream.
  Proposal propose_uniform(std::mt19937_64& main_rng,
                           std::uint64_t golden_steps,
                           const std::vector<sim::Addr>& trace);

  /// Activation-biased-branch proposal: consumes exactly the draws of
  /// InjectionExperiment::draw_activated_injection from `main_rng`.
  Proposal propose_activated(std::mt19937_64& main_rng,
                             const std::vector<sim::Addr>& trace);

  /// Checkpoint support: the auxiliary redraw stream is the sampler's
  /// only mutable state.
  std::mt19937_64& aux() { return aux_; }
  const std::mt19937_64& aux() const { return aux_; }

 private:
  bool is_live(const std::vector<sim::Addr>& trace,
               const hv::Injection& inj) const;

  const analysis::VulnerabilityMap& map_;
  const sim::Program& program_;
  double weight_floor_;
  std::mt19937_64 aux_;
};

}  // namespace xentry::fault
