#include "sim/assembler.hpp"

#include <stdexcept>

namespace xentry::sim {

Assembler::Label Assembler::make_label() {
  label_addr_.push_back(-1);
  return Label{static_cast<std::uint32_t>(label_addr_.size() - 1)};
}

void Assembler::bind(Label l) {
  if (l.id >= label_addr_.size()) {
    throw std::out_of_range("Assembler::bind: unknown label");
  }
  if (label_addr_[l.id] != -1) {
    throw std::logic_error("Assembler::bind: label bound twice");
  }
  label_addr_[l.id] = static_cast<std::int64_t>(current_addr());
}

Assembler::Label Assembler::here() {
  Label l = make_label();
  bind(l);
  return l;
}

void Assembler::global(const std::string& name) {
  if (!symbols_.emplace(name, current_addr()).second) {
    throw std::logic_error("Assembler::global: duplicate symbol '" + name +
                           "'");
  }
}

void Assembler::pad_ud(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    emit({Opcode::Ud, Reg::rax, Reg::rax, 0, 0});
  }
}

void Assembler::emit_branch(Opcode op, Label l) {
  if (l.id >= label_addr_.size()) {
    throw std::out_of_range("Assembler: branch to unknown label");
  }
  fixups_.push_back({code_.size(), l.id});
  emit({op, Reg::rax, Reg::rax, 0, 0});
}

void Assembler::call(const std::string& sym) {
  call_fixups_.push_back({code_.size(), sym});
  emit({Opcode::Call, Reg::rax, Reg::rax, 0, 0});
}

void Assembler::jmp(const std::string& sym) {
  call_fixups_.push_back({code_.size(), sym});
  emit({Opcode::Jmp, Reg::rax, Reg::rax, 0, 0});
}

Program Assembler::finish() {
  for (const Fixup& f : fixups_) {
    const std::int64_t target = label_addr_[f.label];
    if (target == -1) {
      throw std::logic_error("Assembler::finish: unbound label");
    }
    code_[f.pos].imm = target;
  }
  for (const CallFixup& f : call_fixups_) {
    auto it = symbols_.find(f.symbol);
    if (it == symbols_.end()) {
      throw std::logic_error("Assembler::finish: call to unknown symbol '" +
                             f.symbol + "'");
    }
    code_[f.pos].imm = static_cast<std::int64_t>(it->second);
  }
  fixups_.clear();
  call_fixups_.clear();
  return Program(base_, std::move(code_), std::move(symbols_));
}

}  // namespace xentry::sim
