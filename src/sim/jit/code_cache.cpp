#include "sim/jit/code_cache.hpp"

namespace xentry::sim::jit {

CodeCache& CodeCache::instance() {
  static CodeCache cache;
  return cache;
}

std::shared_ptr<const CompiledProgram> CodeCache::find(
    std::uint64_t signature) const {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(signature);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const CompiledProgram> CodeCache::insert(
    std::shared_ptr<const CompiledProgram> compiled) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(compiled->signature, compiled);
  return it->second;
}

std::size_t CodeCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void CodeCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace xentry::sim::jit
