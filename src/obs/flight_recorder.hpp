// SDC flight recorder: a fixed-size ring of the last N VM exits.
//
// The paper's Table II dissects the ~400 injections that escaped
// detection — an analysis that normally needs the campaign re-run with
// ad-hoc printf.  The flight recorder keeps the anatomy of the recent
// past at all times: every `hv::Machine::run` (when telemetry is
// attached) appends one fixed-size frame — exit reason, dynamic length,
// Table I counter deltas, trap info — and when an injection's outcome is
// classified SDC / crash, the ring is dumped into the InjectionRecord's
// `blackbox`, oldest frame first, so the postmortem ships with the
// record.  Appending is a couple of stores into preallocated storage; no
// allocation, no locks (one ring per machine, machines are shard-local).
#pragma once

#include <cstdint>
#include <vector>

namespace xentry::obs {

/// One VM exit, as seen from the machine that executed it.
struct FlightFrame {
  std::uint64_t seq = 0;        ///< monotonic per-recorder sequence number
  std::int64_t exit_code = 0;   ///< ExitReason::code() (the VMER feature)
  std::uint64_t steps = 0;      ///< dynamic instructions executed
  std::uint64_t inst_retired = 0;
  std::uint64_t branches = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint8_t source = 0;      ///< Machine id (campaign: 0 golden, 1 faulty)
  bool reached_vm_entry = false;
  std::uint8_t trap_kind = 0;   ///< sim::TrapKind, 0 == None
  std::uint32_t trap_aux = 0;   ///< assertion id for AssertFailed
  std::uint64_t trap_addr = 0;  ///< faulting address / rip

  friend bool operator==(const FlightFrame&, const FlightFrame&) = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(int depth = 32)
      : frames_(static_cast<std::size_t>(depth > 0 ? depth : 1)) {}

  void append(const FlightFrame& frame) {
    FlightFrame& slot = frames_[next_];
    slot = frame;
    slot.seq = seq_++;
    next_ = next_ + 1 == frames_.size() ? 0 : next_ + 1;
  }

  /// Frames appended over the recorder's lifetime (>= size()).
  std::uint64_t total_appended() const { return seq_; }
  /// Frames currently held (<= depth).
  std::size_t size() const {
    return seq_ < frames_.size() ? static_cast<std::size_t>(seq_)
                                 : frames_.size();
  }
  std::size_t depth() const { return frames_.size(); }

  /// Copies the held frames into `out` (cleared first), oldest to newest.
  void dump_into(std::vector<FlightFrame>& out) const {
    out.clear();
    const std::size_t n = size();
    out.reserve(n);
    // Oldest frame: `next_` when full, slot 0 otherwise.
    std::size_t i = seq_ < frames_.size() ? 0 : next_;
    for (std::size_t k = 0; k < n; ++k) {
      out.push_back(frames_[i]);
      i = i + 1 == frames_.size() ? 0 : i + 1;
    }
  }

  void clear() {
    next_ = 0;
    seq_ = 0;
  }

 private:
  std::vector<FlightFrame> frames_;
  std::size_t next_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace xentry::obs
