
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assembler.cpp" "src/sim/CMakeFiles/xentry_sim.dir/assembler.cpp.o" "gcc" "src/sim/CMakeFiles/xentry_sim.dir/assembler.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/xentry_sim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/xentry_sim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/isa.cpp" "src/sim/CMakeFiles/xentry_sim.dir/isa.cpp.o" "gcc" "src/sim/CMakeFiles/xentry_sim.dir/isa.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/xentry_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/xentry_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/program.cpp" "src/sim/CMakeFiles/xentry_sim.dir/program.cpp.o" "gcc" "src/sim/CMakeFiles/xentry_sim.dir/program.cpp.o.d"
  "/root/repo/src/sim/verifier.cpp" "src/sim/CMakeFiles/xentry_sim.dir/verifier.cpp.o" "gcc" "src/sim/CMakeFiles/xentry_sim.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
