#include "sim/assembler.hpp"

#include <gtest/gtest.h>

namespace xentry::sim {
namespace {

TEST(AssemblerTest, EmitsAndResolvesForwardLabel) {
  Assembler as(100);
  auto skip = as.make_label();
  as.movi(Reg::rax, 1);
  as.jmp(skip);
  as.movi(Reg::rax, 2);
  as.bind(skip);
  as.hlt();
  Program p = as.finish();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(101).op, Opcode::Jmp);
  EXPECT_EQ(p.at(101).imm, 103);  // bound after the second movi
}

TEST(AssemblerTest, BackwardLabelLoop) {
  Assembler as(0);
  as.movi(Reg::rcx, 3);
  auto top = as.here();
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jne(top);
  as.hlt();
  Program p = as.finish();
  EXPECT_EQ(p.at(3).imm, 1);
}

TEST(AssemblerTest, GlobalSymbolsAndCallBySymbol) {
  Assembler as(1000);
  as.global("main");
  as.call("helper");
  as.hlt();
  as.pad_ud(3);
  as.global("helper");
  as.movi(Reg::rax, 7);
  as.ret();
  Program p = as.finish();
  EXPECT_EQ(p.symbol("main"), 1000u);
  EXPECT_EQ(p.symbol("helper"), 1005u);
  EXPECT_EQ(p.at(1000).imm, 1005);
  EXPECT_EQ(p.at(1002).op, Opcode::Ud);
}

TEST(AssemblerTest, SymbolAtFindsEnclosingFunction) {
  Assembler as(0);
  as.global("f");
  as.nop();
  as.nop();
  as.global("g");
  as.nop();
  Program p = as.finish();
  EXPECT_EQ(p.symbol_at(1), "f");
  EXPECT_EQ(p.symbol_at(2), "g");
}

TEST(AssemblerTest, UnboundLabelThrowsAtFinish) {
  Assembler as(0);
  auto l = as.make_label();
  as.jmp(l);
  EXPECT_THROW(as.finish(), std::logic_error);
}

TEST(AssemblerTest, UnknownCallSymbolThrowsAtFinish) {
  Assembler as(0);
  as.call("nope");
  EXPECT_THROW(as.finish(), std::logic_error);
}

TEST(AssemblerTest, DuplicateSymbolThrows) {
  Assembler as(0);
  as.global("f");
  EXPECT_THROW(as.global("f"), std::logic_error);
}

TEST(AssemblerTest, DoubleBindThrows) {
  Assembler as(0);
  auto l = as.here();
  EXPECT_THROW(as.bind(l), std::logic_error);
}

TEST(AssemblerTest, UnknownSymbolLookupThrows) {
  Assembler as(0);
  as.nop();
  Program p = as.finish();
  EXPECT_THROW(p.symbol("missing"), std::out_of_range);
}

TEST(AssemblerTest, AssertionCarriesId) {
  Assembler as(0);
  as.assert_le(Reg::rbx, 19, 42);
  Program p = as.finish();
  EXPECT_EQ(p.at(0).op, Opcode::AssertLeRI);
  EXPECT_EQ(p.at(0).aux, 42u);
  EXPECT_EQ(p.at(0).imm, 19);
}

TEST(AssemblerTest, DisassembleRendersOperands) {
  Instruction load{Opcode::Load, Reg::rax, Reg::rbx, 8, 0};
  EXPECT_EQ(disassemble(load), "load rax, [rbx+8]");
  Instruction store{Opcode::Store, Reg::rsi, Reg::rdx, -2, 0};
  EXPECT_EQ(disassemble(store), "store [rsi-2], rdx");
  Instruction mov{Opcode::MovRI, Reg::r10, Reg::rax, 5, 0};
  EXPECT_EQ(disassemble(mov), "mov r10, 5");
}

}  // namespace
}  // namespace xentry::sim
