#include "sim/perf_counters.hpp"

#include <gtest/gtest.h>

#include "sim/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/memory.hpp"

namespace xentry::sim {
namespace {

TEST(PerfCountersTest, DisabledByDefault) {
  PerfCounters pc;
  EXPECT_FALSE(pc.enabled());
  pc.on_retire(true, true, true);
  EXPECT_EQ(pc.raw().inst_retired, 0u);
}

TEST(PerfCountersTest, ArmDisarmCycle) {
  PerfCounters pc;
  pc.arm();
  pc.on_retire(false, true, false);
  pc.on_retire(true, false, false);
  PerfSnapshot s = pc.disarm();
  EXPECT_EQ(s.inst_retired, 2u);
  EXPECT_EQ(s.branches, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.stores, 0u);
  // After disarm, counting stops.
  pc.on_retire(true, true, true);
  EXPECT_EQ(pc.raw().inst_retired, 2u);
  // Re-arming clears.
  pc.arm();
  EXPECT_EQ(pc.raw().inst_retired, 0u);
}

TEST(PerfCountersTest, CpuCountsEventClassesExactly) {
  // The feature vector of the paper's Table I, measured on a concrete
  // program: 2 branches (call+ret), 1 load (ret pops), 2 stores
  // (call pushes + explicit store), plus the ALU/mov instructions.
  Assembler as(0x1000);
  as.global("main");
  as.movi(Reg::rbx, 0x100);     // 1 insn
  as.call("leaf");              // branch + store
  as.store(Reg::rbx, Reg::rax); // store
  as.hlt();
  as.global("leaf");
  as.movi(Reg::rax, 5);         // 1 insn
  as.ret();                     // branch + load
  Program p = as.finish();
  Memory mem;
  mem.map(0x100, 16, Perm::ReadWrite, "data");
  mem.map(0x200, 64, Perm::ReadWrite, "stack");
  Cpu cpu(&p, &mem);
  cpu.reset(p.symbol("main"), 0x240);
  cpu.counters().arm();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  PerfSnapshot s = cpu.counters().disarm();
  EXPECT_EQ(s.inst_retired, 5u);  // hlt does not retire
  EXPECT_EQ(s.branches, 2u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.stores, 2u);
}

TEST(PerfCountersTest, SnapshotEquality) {
  PerfSnapshot a{10, 2, 3, 4};
  PerfSnapshot b{10, 2, 3, 4};
  PerfSnapshot c{10, 2, 3, 5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace xentry::sim
