// Fig. 7: normalized fault-free performance overhead of Xentry per
// benchmark — runtime detection alone (software assertions) vs runtime +
// VM transition detection (interception, counter programming/readout,
// rule evaluation) — averaged over 10 runs with per-run activation rates,
// exactly like the paper's methodology (Section V-C).
//
// Paper anchors: mcf/bzip2/freqmine/canneal < 1% average; bzip2 as low as
// 0.19%; postmark the highest (11.7% maximum), average ~2.5%.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "workloads/workload.hpp"
#include "xentry/cost_model.hpp"
#include "xentry/framework.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Fig. 7: normalized performance overhead");

  // Deployable model: its rule evaluation cost is part of the overhead.
  fault::TrainedDetector det = bench::train_paper_model();
  TransitionDetector detector(det.rules);

  hv::Machine machine;
  const CostParams params;
  const int probe_activations = bench::scaled(2000);
  const int runs = 10;

  std::printf("%-10s | %-21s | %-21s\n", "", "runtime only",
              "runtime + transition");
  std::printf("%-10s | %9s %11s | %9s %11s\n", "benchmark", "avg %", "max %",
              "avg %", "max %");

  double sum_avg = 0;
  for (wl::Benchmark b : wl::all_benchmarks()) {
    const wl::WorkloadProfile prof = wl::profile(b, wl::VirtMode::Para);
    wl::WorkloadGenerator gen(machine, prof,
                              77 + static_cast<std::uint64_t>(b));

    // Measure Xentry's per-activation work over this workload's mix.
    double asserts_sum = 0, cmps_sum = 0;
    for (int i = 0; i < probe_activations; ++i) {
      hv::RunOptions opts;
      opts.count_assertions = true;
      const hv::RunResult res = machine.run(gen.next(), opts);
      asserts_sum += static_cast<double>(res.assertions_executed);
      int cmps = 0;
      const auto arr =
          FeatureVector::from(hv::ExitReason::softirq(), res.counters)
              .as_array();
      detector.rules().evaluate(arr, &cmps);
      cmps_sum += cmps;
    }
    const ActivationCost cost = activation_cost(
        params, static_cast<std::uint64_t>(asserts_sum / probe_activations),
        static_cast<int>(cmps_sum / probe_activations));

    // Ten runs, each with its own sampled activation rate (the paper runs
    // each benchmark 10 times and reports average and maximum).
    std::vector<double> rt_only, rt_vmt;
    for (int r = 0; r < runs; ++r) {
      const double rate = gen.sample_rate();
      rt_only.push_back(overhead_fraction(
          params, rate, cost.runtime_only_cycles * prof.disturbance));
      rt_vmt.push_back(overhead_fraction(
          params, rate, cost.with_transition_cycles * prof.disturbance));
    }
    auto avg = [](const std::vector<double>& v) {
      double s = 0;
      for (double x : v) s += x;
      return s / static_cast<double>(v.size());
    };
    auto mx = [](const std::vector<double>& v) {
      return *std::max_element(v.begin(), v.end());
    };
    std::printf("%-10s | %8.3f%% %10.3f%% | %8.3f%% %10.3f%%\n",
                std::string(wl::benchmark_name(b)).c_str(),
                100 * avg(rt_only), 100 * mx(rt_only), 100 * avg(rt_vmt),
                100 * mx(rt_vmt));
    sum_avg += avg(rt_vmt);
  }
  std::printf("%-10s | %32s %8.3f%%\n", "AVG", "", 100 * sum_avg / 6);
  std::printf(
      "\npaper anchors: mcf/bzip2/freqmine/canneal < 1%% avg; bzip2 0.19%%;\n"
      "postmark highest (avg ~2.5%%, max 11.7%%); runtime-only is tiny.\n");
  return 0;
}
