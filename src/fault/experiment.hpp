// Single-injection experiment: golden run vs faulted run.
//
// Mirrors the paper's Simics methodology (Section V-A/B): the same
// activation is executed twice from an identical machine state — once
// clean (the golden run), once with a single-bit architectural-register
// flip at a uniformly chosen dynamic instruction — and the outcomes are
// compared: control-flow trace, final persistent state, and detection
// verdicts from the Xentry framework.
#pragma once

#include <random>

#include "fault/lockstep.hpp"
#include "fault/outcome.hpp"
#include "hv/machine.hpp"
#include "ml/dataset.hpp"
#include "xentry/framework.hpp"

namespace xentry::fault {

/// Models whether corrupted state is ever *consumed* downstream.
///
/// The paper determines consequences by letting applications run to
/// completion on Simics; a single corrupted guest-visible word frequently
/// masks at the application level (never read, or overwritten).  We do not
/// run real guests, so consumption is drawn per corrupted word,
/// deterministically per experiment: application-facing words matter with
/// `app_consume_probability` each, guest-kernel words with
/// `kernel_consume_probability`; control state and hypervisor-internal
/// state always matter.  See DESIGN.md (substitution table).
struct OutcomeModel {
  double app_consume_probability = 0.10;
  double kernel_consume_probability = 0.15;
  /// Guests read the published clock constantly (gettimeofday, scheduler
  /// ticks), so corrupted time values are consumed far more often than
  /// ordinary data — which is why they dominate the paper's Table II.
  double time_consume_probability = 0.85;
  /// Much hypervisor-internal state is self-healing (scheduler cursors and
  /// runqueues are rewritten every pass, pending masks are re-derived), so
  /// a corrupted word only manifests if something reads it first.
  double hv_consume_probability = 0.30;
  /// A consumed corrupted pointer/translation either faults when the app
  /// dereferences it (crash) or silently resolves to the wrong frame and
  /// feeds wrong data into the computation (SDC).
  double pointer_crash_fraction = 0.35;
};

class InjectionExperiment {
 public:
  /// Both machines must be built with identical options.  `xentry` owns
  /// the detection configuration (and the trained model, if any).
  InjectionExperiment(hv::Machine& golden, hv::Machine& faulty,
                      Xentry& xentry, const OutcomeModel& model = {});

  /// Draws a uniform single-bit register flip at a dynamic instruction
  /// within `golden_steps` — the raw architectural fault model.
  static hv::Injection draw_injection(std::mt19937_64& rng,
                                      std::uint64_t golden_steps);

  /// Draws a flip biased toward *activated* faults (paper Section V-B:
  /// "only soft errors occurring before reading registers can be
  /// activated"): the injection point is uniform over the golden trace and
  /// the register is chosen among those the upcoming instruction reads
  /// (rip is always a candidate — a flipped rip is consumed by the next
  /// fetch).
  static hv::Injection draw_activated_injection(
      std::mt19937_64& rng, const std::vector<sim::Addr>& golden_trace,
      const sim::Program& program);

  struct Result {
    InjectionRecord record;
    FeatureVector golden_features;  ///< a labelled-correct training sample
    bool golden_ok = false;  ///< golden run reached VM entry (sanity)
  };

  /// Everything one clean execution of an activation yields: dynamic
  /// length, control-flow trace, the Table I counters, whether VM entry
  /// was reached — and the pre-run machine state, so the faulted machine
  /// can be aligned without re-executing the golden run.
  struct GoldenProbe {
    std::uint64_t steps = 0;
    std::vector<sim::Addr> trace;
    sim::PerfSnapshot counters;
    bool reached_vm_entry = false;
    /// Golden machine state immediately before the run (buffers are
    /// reused across probes of the same machine).
    hv::Machine::Snapshot pre;
  };

  /// Runs one experiment.  Both machines start from the golden machine's
  /// current state and end in their respective post-run states, so a
  /// stream of calls naturally advances along the golden path.
  Result run_one(const hv::Activation& activation,
                 const hv::Injection& injection);

  /// Golden-run-reuse fast path: runs only the faulted machine, taking the
  /// golden run's trace/counters/steps from `probe` (which must come from
  /// probe_golden_advance with the same activation — its run IS this
  /// experiment's golden run, and the golden machine is already at its
  /// post-run state).  Halves golden executions per injection versus
  /// probe_golden + run_one, with bit-identical results.
  Result run_one(const hv::Activation& activation,
                 const hv::Injection& injection, const GoldenProbe& probe);

  /// Runs the activation fault-free on both machines (keeps them in
  /// lock-step between experiments).
  void advance(const hv::Activation& activation);

  /// Steps of the most recent golden run (for drawing injection points).
  std::uint64_t last_golden_steps() const { return last_golden_steps_; }

  /// Runs the activation clean once (on a scratch state) just to measure
  /// its dynamic length, restoring state afterwards.
  std::uint64_t measure_golden_steps(const hv::Activation& activation);

  /// Attaches the shard's VM-exit ring: when an injection's outcome is
  /// SDC / crash class (`is_blackbox_worthy`), the ring is dumped into
  /// the record's `blackbox` for re-run-free postmortems.  Borrowed;
  /// nullptr (default) disables the dump.
  void set_flight_recorder(const obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  /// Lockstep-forensics policy for qualifying outcomes (needs_forensics):
  /// SDC and app crashes always replay; undetected escapes replay 1-in-
  /// `sample_every` (1 = all).  Off by default — replays re-execute the
  /// faulted window on the reference engine and are not free.
  struct ForensicsConfig {
    bool enabled = false;
    LockstepParams params{};
    int sample_every = 1;
  };

  void set_forensics(const ForensicsConfig& cfg) { forensics_ = cfg; }

  /// Checkpoint support: the escape counter driving `sample_every` is the
  /// experiment's only state that survives across injections (the scratch
  /// buffers are realigned from the golden probe every run).
  std::uint64_t forensics_counter() const { return forensics_counter_; }
  void set_forensics_counter(std::uint64_t n) { forensics_counter_ = n; }

  /// Like measure_golden_steps but also captures the control-flow trace
  /// (for activated-biased injection draws).  Restores the golden machine
  /// to its pre-run state afterwards.
  GoldenProbe probe_golden(const hv::Activation& activation);

  /// Campaign fast path: like probe_golden, but the golden machine is
  /// LEFT AT ITS POST-RUN STATE (the probe run is the golden run) and
  /// `probe`'s buffers are reused.  Pair with run_one(act, inj, probe);
  /// to abandon the probe instead (e.g. a degenerate zero-step
  /// activation), rewind with `machine.restore(probe.pre)`.
  void probe_golden_advance(const hv::Activation& activation,
                            GoldenProbe& probe);

 private:
  Result run_faulted(const hv::Activation& activation,
                     const hv::Injection& injection,
                     const GoldenProbe& probe);
  std::vector<hv::StateDiff> consumed_diffs(
      const std::vector<hv::StateDiff>& diffs, const hv::Activation& act,
      const hv::Injection& inj) const;
  Consequence classify_consequence(
      const std::vector<hv::StateDiff>& diffs) const;
  UndetectedClass classify_undetected(
      const InjectionRecord& rec, const std::vector<hv::StateDiff>& diffs,
      const std::vector<sim::Addr>& fault_trace) const;
  void run_forensics(InjectionRecord& rec, const hv::Activation& activation,
                     const hv::Injection& injection, const GoldenProbe& probe);
  UndetectedClass attribute_from_evidence(const obs::ForensicsRecord& fx,
                                          const InjectionRecord& rec) const;

  hv::Machine& golden_;
  hv::Machine& faulty_;
  Xentry& xentry_;
  OutcomeModel model_;
  const obs::FlightRecorder* flight_ = nullptr;
  ForensicsConfig forensics_;
  std::uint64_t forensics_counter_ = 0;  ///< escapes seen, for sample_every
  std::uint64_t last_golden_steps_ = 0;

  // Scratch buffers reused across injections (allocation hygiene: the
  // campaign loop must not reallocate traces/snapshots per run).
  GoldenProbe scratch_probe_;          ///< for the two-run run_one overload
  hv::Machine::Snapshot sync_snap_;    ///< for advance()/measure_golden_steps
  hv::Machine::Snapshot forensics_post_;  ///< golden post-state across replay
  std::vector<sim::Addr> fault_trace_; ///< faulted run's control-flow trace
};

}  // namespace xentry::fault
