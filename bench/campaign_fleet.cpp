// Fleet campaign driver: one campaign, N worker processes, a live
// observability plane.
//
// Coordinator mode (the default) partitions the injection space into
// deterministic work units, fork+execs this same binary in --worker
// mode once per worker, and supervises the fleet: merged progress and
// metrics from every worker's heartbeat file and snapshot sidecars, an
// atomically-rewritten status.json on a fixed cadence, a one-line
// dashboard on stderr, and bounded auto-restart of workers that exit
// abnormally or stall.  On completion it prints a JSON report whose
// records_digest is bit-identical to the equivalent single-process run
// (micro_campaign with shards = --units), including when a worker was
// SIGKILLed mid-flight (--kill-one-after, or by hand) and restarted.
//
// Usage:
//   campaign_fleet --dir PATH [--injections N] [--workers N] [--units N]
//                  [--seed S] [--sampling] [--records-format jsonl|bin]
//                  [--checkpoint-every N] [--status-interval SEC]
//                  [--heartbeat SEC] [--stall-timeout SEC]
//                  [--straggler-fraction F] [--max-restarts N]
//                  [--kill-one-after N] [--help]
// Worker mode (internal, spawned by the coordinator):
//   campaign_fleet ...same flags... --worker W
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/artifacts.hpp"
#include "fault/fleet.hpp"
#include "hv/machine.hpp"
#include "hv/microvisor.hpp"
#include "obs/atomic_file.hpp"
#include "obs/record_sink.hpp"
#include "obs/snapshot.hpp"

namespace {

using namespace xentry;

struct CliOptions {
  int injections = 5000;
  int units = 0;  // 0: 2x workers
  int workers = 4;
  std::uint64_t seed = 7;
  std::string dir;
  bool sampling = false;
  obs::RecordFormat records_format = obs::RecordFormat::kJsonl;
  int checkpoint_every = 256;
  double status_interval = 1.0;
  double heartbeat = 0.25;
  double stall_timeout = 30.0;
  double straggler_fraction = 0.5;
  int max_restarts = 2;
  int kill_one_after = 0;
  int worker = -1;  // >= 0: worker mode
};

void print_help() {
  std::printf(
      "usage: campaign_fleet --dir PATH [options]\n"
      "\n"
      "Runs one injection campaign across N worker processes with a live\n"
      "observability plane (status.json + stderr dashboard), then merges\n"
      "the unit streams into a records digest that is bit-identical to\n"
      "the single-process run with shards = --units.\n"
      "\n"
      "Options:\n"
      "  --dir PATH            campaign directory (required; must exist).\n"
      "                        Holds records.shard<u>.*, per-worker\n"
      "                        journals/heartbeats, status.json\n"
      "  --injections N        campaign size (default 5000)\n"
      "  --workers N           worker processes (default 4)\n"
      "  --units N             work units (default 2x workers; the\n"
      "                        equivalent single-process shard count)\n"
      "  --seed S              campaign seed (default 7)\n"
      "  --sampling            masking-aware importance sampling\n"
      "  --records-format jsonl|bin\n"
      "  --checkpoint-every N  shard iterations between checkpoints\n"
      "                        (default 256)\n"
      "  --status-interval SEC status.json/dashboard cadence (default 1)\n"
      "  --heartbeat SEC       worker heartbeat cadence (default 0.25)\n"
      "  --stall-timeout SEC   no-signal window before a worker is killed\n"
      "                        and restarted (default 30)\n"
      "  --straggler-fraction F\n"
      "                        flag workers/shards below F x median rate\n"
      "                        (default 0.5)\n"
      "  --max-restarts N      restart budget per worker (default 2)\n"
      "  --kill-one-after N    chaos: SIGKILL one worker once N fleet\n"
      "                        injections completed (tests the restart +\n"
      "                        bit-identical-resume path)\n"
      "  --worker W            internal: run worker W's units in this\n"
      "                        process (spawned by the coordinator)\n"
      "  --help                this text\n");
}

bool parse_cli(int argc, char** argv, CliOptions& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "campaign_fleet: %s needs a value\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      print_help();
      std::exit(0);
    } else if (arg == "--sampling") {
      o.sampling = true;
    } else if (arg == "--injections") {
      if ((v = value()) == nullptr) return false;
      o.injections = std::atoi(v);
    } else if (arg == "--units") {
      if ((v = value()) == nullptr) return false;
      o.units = std::atoi(v);
    } else if (arg == "--workers") {
      if ((v = value()) == nullptr) return false;
      o.workers = std::atoi(v);
    } else if (arg == "--seed") {
      if ((v = value()) == nullptr) return false;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--dir") {
      if ((v = value()) == nullptr) return false;
      o.dir = v;
    } else if (arg == "--records-format") {
      if ((v = value()) == nullptr) return false;
      const auto fmt = obs::record_format_from_name(v);
      if (!fmt.has_value()) {
        std::fprintf(stderr,
                     "campaign_fleet: unknown --records-format '%s' (want "
                     "jsonl|bin)\n",
                     v);
        return false;
      }
      o.records_format = *fmt;
    } else if (arg == "--checkpoint-every") {
      if ((v = value()) == nullptr) return false;
      o.checkpoint_every = std::atoi(v);
    } else if (arg == "--status-interval") {
      if ((v = value()) == nullptr) return false;
      o.status_interval = std::atof(v);
    } else if (arg == "--heartbeat") {
      if ((v = value()) == nullptr) return false;
      o.heartbeat = std::atof(v);
    } else if (arg == "--stall-timeout") {
      if ((v = value()) == nullptr) return false;
      o.stall_timeout = std::atof(v);
    } else if (arg == "--straggler-fraction") {
      if ((v = value()) == nullptr) return false;
      o.straggler_fraction = std::atof(v);
    } else if (arg == "--max-restarts") {
      if ((v = value()) == nullptr) return false;
      o.max_restarts = std::atoi(v);
    } else if (arg == "--kill-one-after") {
      if ((v = value()) == nullptr) return false;
      o.kill_one_after = std::atoi(v);
    } else if (arg == "--worker") {
      if ((v = value()) == nullptr) return false;
      o.worker = std::atoi(v);
    } else {
      std::fprintf(stderr, "campaign_fleet: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  if (o.dir.empty()) {
    std::fprintf(stderr, "campaign_fleet: --dir is required\n");
    return false;
  }
  if (o.units <= 0) o.units = 2 * o.workers;
  return true;
}

fault::FleetOptions build_fleet_options(const CliOptions& o) {
  fault::FleetOptions fo;
  fo.base.injections = o.injections;
  fo.base.seed = o.seed;
  fo.base.sampling.importance = o.sampling;
  if (o.sampling) {
    fo.base.analysis = std::make_shared<analysis::AnalysisArtifacts>(
        analysis::analyze_program(
            hv::build_microvisor(fo.base.machine).program));
  }
  // Checkpointed workers never collect a training dataset, so transition
  // detection could never fire (same rule micro_campaign applies when
  // --checkpoint is set) — this keeps the fleet digest comparable to the
  // checkpointed single-process reference.
  fo.base.xentry.transition_detection = false;
  fo.base.streaming.records_format = o.records_format;
  fo.base.streaming.checkpoint_every = o.checkpoint_every;
  fo.units = o.units;
  fo.workers = o.workers;
  fo.dir = o.dir;
  fo.status_interval_sec = o.status_interval;
  fo.worker_heartbeat_sec = o.heartbeat;
  fo.stall_timeout_sec = o.stall_timeout;
  fo.straggler_fraction = o.straggler_fraction;
  fo.max_restarts = o.max_restarts;
  fo.kill_one_after = o.kill_one_after;
  return fo;
}

/// The canonical worker argv: the coordinator's configuration flags
/// re-serialized (NOT the chaos flags — the coordinator owns those),
/// plus --worker W.  Every respawn uses the same vector, so a restarted
/// worker runs the identical configuration and resumes from its journal.
std::vector<std::string> worker_argv(const CliOptions& o, int worker) {
  std::vector<std::string> args;
  args.emplace_back("campaign_fleet");
  args.emplace_back("--dir");
  args.push_back(o.dir);
  args.emplace_back("--injections");
  args.push_back(std::to_string(o.injections));
  args.emplace_back("--units");
  args.push_back(std::to_string(o.units));
  args.emplace_back("--workers");
  args.push_back(std::to_string(o.workers));
  args.emplace_back("--seed");
  args.push_back(std::to_string(o.seed));
  if (o.sampling) args.emplace_back("--sampling");
  args.emplace_back("--records-format");
  args.emplace_back(obs::record_format_name(o.records_format));
  args.emplace_back("--checkpoint-every");
  args.push_back(std::to_string(o.checkpoint_every));
  args.emplace_back("--heartbeat");
  args.push_back(std::to_string(o.heartbeat));
  args.emplace_back("--straggler-fraction");
  args.push_back(std::to_string(o.straggler_fraction));
  args.emplace_back("--worker");
  args.push_back(std::to_string(worker));
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;

  const fault::FleetOptions fo = build_fleet_options(cli);
  if (cli.worker >= 0) {
    // Worker mode: run this worker's units and exit; the coordinator
    // reaps the exit code and restarts on failure.
    return fault::run_fleet_worker(fo, cli.worker);
  }

  // Coordinator: spawn workers as fresh processes of this same binary —
  // the observability plane runs cross-process, through files only.
  const std::string self = argv[0];
  fault::FleetOptions opts = fo;
  opts.spawn = [&cli, &self](int worker, int /*attempt*/) -> long {
    const std::vector<std::string> args = worker_argv(cli, worker);
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    std::vector<char*> cargs;
    cargs.reserve(args.size() + 1);
    for (const std::string& a : args) {
      cargs.push_back(const_cast<char*>(a.c_str()));
    }
    cargs.push_back(nullptr);
    ::execv("/proc/self/exe", cargs.data());
    ::execv(self.c_str(), cargs.data());  // fallback without procfs
    std::fprintf(stderr, "campaign_fleet: exec failed for worker %d\n",
                 worker);
    _exit(127);
  };
  opts.dashboard = [](const std::string& line) {
    std::fprintf(stderr, "[campaign_fleet] %s\n", line.c_str());
  };

  const fault::FleetResult res = fault::run_fleet(opts);
  if (!res.ok) {
    std::fprintf(stderr, "campaign_fleet: %s\n", res.error.c_str());
    return 1;
  }

  // Merged metrics report (full registry; strip timing metrics before
  // comparing across runs) — published atomically next to status.json.
  {
    std::ostringstream os;
    res.metrics.write_json(os);
    obs::write_file_atomic(cli.dir + "/fleet_metrics.json", os.str());
  }

  std::string restarts_json = "[";
  for (std::size_t w = 0; w < res.worker_restarts.size(); ++w) {
    if (w != 0) restarts_json += ", ";
    restarts_json += std::to_string(res.worker_restarts[w]);
  }
  restarts_json += "]";
  std::printf(
      "{\n"
      "  \"bench\": \"campaign_fleet\",\n"
      "  \"injections\": %d,\n"
      "  \"units\": %d,\n"
      "  \"workers\": %d,\n"
      "  \"seed\": %" PRIu64 ",\n"
      "  \"sampling\": %s,\n"
      "  \"records\": %zu,\n"
      "  \"records_digest\": \"%016" PRIx64 "\",\n"
      "  \"digest_cross_checked\": %s,\n"
      "  \"restarts\": %d,\n"
      "  \"worker_restarts\": %s,\n"
      "  \"effective_injections\": %.1f,\n"
      "  \"weighted_masked_rate\": %.6f,\n"
      "  \"weighted_sdc_rate\": %.6f,\n"
      "  \"weighted_manifested_rate\": %.6f,\n"
      "  \"weighted_detected_rate\": %.6f,\n"
      "  \"elapsed_sec\": %.4f,\n"
      "  \"injections_per_sec\": %.1f,\n"
      "  \"status\": \"%s/status.json\",\n"
      "  \"metrics\": \"%s/fleet_metrics.json\"\n"
      "}\n",
      cli.injections, cli.units, cli.workers, cli.seed,
      cli.sampling ? "true" : "false", res.records.size(), res.digest,
      res.digest_cross_checked ? "true" : "false", res.restarts,
      restarts_json.c_str(), res.rates.effective_injections,
      res.rates.rate(fault::Consequence::Masked),
      res.rates.rate(fault::Consequence::AppSdc),
      res.rates.manifested_rate(), res.rates.detected_rate(),
      res.elapsed_sec,
      res.elapsed_sec > 0
          ? static_cast<double>(res.records.size()) / res.elapsed_sec
          : 0.0,
      cli.dir.c_str(), cli.dir.c_str());
  return 0;
}
