#include "ml/rules.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>

#include "ml/metrics.hpp"

namespace xentry::ml {
namespace {

Dataset two_feature_data() {
  Dataset ds({"WM", "RT"});
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int> wm(0, 60), rt(0, 400);
  for (int i = 0; i < 400; ++i) {
    const std::int64_t w = wm(rng), r = rt(rng);
    // Ground truth resembling Fig. 6: incorrect when 10<WM<30 and RT>200,
    // or WM>=30 and RT>320.
    const bool incorrect = (w > 10 && w < 30 && r > 200) || (w >= 30 && r > 320);
    std::array<std::int64_t, 2> v{w, r};
    ds.add(v, incorrect ? Label::Incorrect : Label::Correct);
  }
  return ds;
}

TEST(RuleSetTest, CompiledRulesAgreeWithTreeEverywhere) {
  Dataset ds = two_feature_data();
  DecisionTree tree;
  tree.train(ds);
  RuleSet rules = RuleSet::compile(tree);
  for (std::int64_t w = 0; w <= 60; w += 3) {
    for (std::int64_t r = 0; r <= 400; r += 17) {
      std::array<std::int64_t, 2> v{w, r};
      int tc = 0, rc = 0;
      EXPECT_EQ(tree.predict(v, &tc), rules.evaluate(v, &rc));
      EXPECT_EQ(tc, rc);
    }
  }
}

TEST(RuleSetTest, MaxComparisonsBoundsObservedComparisons) {
  Dataset ds = two_feature_data();
  DecisionTree tree;
  tree.train(ds);
  RuleSet rules = RuleSet::compile(tree);
  const int bound = rules.max_comparisons();
  EXPECT_GT(bound, 0);
  int worst = 0;
  for (std::int64_t w = 0; w <= 60; ++w) {
    for (std::int64_t r = 0; r <= 400; r += 5) {
      std::array<std::int64_t, 2> v{w, r};
      int c = 0;
      rules.evaluate(v, &c);
      worst = std::max(worst, c);
      EXPECT_LE(c, bound);
    }
  }
  EXPECT_GT(worst, 1);  // tree is nontrivial
}

TEST(RuleSetTest, CompileUntrainedThrows) {
  DecisionTree tree;
  EXPECT_THROW(RuleSet::compile(tree), std::invalid_argument);
}

TEST(RuleSetTest, EvaluateEmptyThrows) {
  RuleSet rs;
  std::array<std::int64_t, 1> v{0};
  EXPECT_THROW(rs.evaluate(v), std::logic_error);
}

TEST(RuleSetTest, SerializeRoundTrip) {
  Dataset ds = two_feature_data();
  DecisionTree tree;
  tree.train(ds);
  RuleSet rules = RuleSet::compile(tree);
  RuleSet back = RuleSet::deserialize(rules.serialize());
  ASSERT_EQ(back.size(), rules.size());
  for (std::int64_t w = 0; w <= 60; w += 7) {
    for (std::int64_t r = 0; r <= 400; r += 23) {
      std::array<std::int64_t, 2> v{w, r};
      EXPECT_EQ(back.evaluate(v), rules.evaluate(v));
    }
  }
}

TEST(RuleSetTest, DeserializeRejectsGarbage) {
  EXPECT_THROW(RuleSet::deserialize(""), std::runtime_error);
  EXPECT_THROW(RuleSet::deserialize("not a rule\n"), std::runtime_error);
}

TEST(RuleSetTest, SingleLeafTree) {
  Dataset ds({"x"});
  std::array<std::int64_t, 1> v{1};
  ds.add(v, Label::Incorrect);
  ds.add(v, Label::Incorrect);
  DecisionTree tree;
  tree.train(ds);
  RuleSet rules = RuleSet::compile(tree);
  EXPECT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.max_comparisons(), 0);
  int c = 99;
  EXPECT_EQ(rules.evaluate(v, &c), Label::Incorrect);
  EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace xentry::ml
