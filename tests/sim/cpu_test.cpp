#include "sim/cpu.hpp"

#include <gtest/gtest.h>

#include "sim/assembler.hpp"

namespace xentry::sim {
namespace {

constexpr Addr kCodeBase = 0x400000;
constexpr Addr kDataBase = 0x10000;
constexpr Addr kStackTop = 0x20100;

struct Fixture {
  Program prog;
  Memory mem;

  explicit Fixture(Assembler& as) : prog(as.finish()) {
    mem.map(kDataBase, 256, Perm::ReadWrite, "data");
    mem.map(0x20000, 0x100, Perm::ReadWrite, "stack");
  }

  Cpu make_cpu() {
    Cpu cpu(&prog, &mem);
    cpu.reset(prog.base(), kStackTop);
    return cpu;
  }
};

TEST(CpuTest, ArithmeticAndFlags) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 10);
  as.movi(Reg::rbx, 3);
  as.sub(Reg::rax, Reg::rbx);  // rax = 7
  as.mul(Reg::rax, Reg::rbx);  // rax = 21
  as.addi(Reg::rax, -21);      // rax = 0, ZF set
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rax), 0u);
  EXPECT_TRUE(cpu.reg(Reg::rflags) & kFlagZero);
}

TEST(CpuTest, DivComputesQuotientAndRemainder) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 17);
  as.movi(Reg::rcx, 5);
  as.div(Reg::rcx);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rax), 3u);
  EXPECT_EQ(cpu.reg(Reg::rdx), 2u);
}

TEST(CpuTest, DivideByZeroTraps) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 17);
  as.movi(Reg::rcx, 0);
  as.div(Reg::rcx);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::DivideError);
}

TEST(CpuTest, LoadStoreRoundTrip) {
  Assembler as(kCodeBase);
  as.movi(Reg::rbx, kDataBase);
  as.movi(Reg::rax, 99);
  as.store(Reg::rbx, Reg::rax, 4);
  as.load(Reg::rcx, Reg::rbx, 4);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rcx), 99u);
  EXPECT_EQ(f.mem.peek(kDataBase + 4), 99u);
}

TEST(CpuTest, LoadFromUnmappedPageFaults) {
  Assembler as(kCodeBase);
  as.movi(Reg::rbx, 0xdead0000);
  as.load(Reg::rax, Reg::rbx);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::PageFault);
  EXPECT_EQ(info.trap.fault_addr, 0xdead0000u);
  // rip points at the faulting instruction.
  EXPECT_EQ(cpu.reg(Reg::rip), kCodeBase + 1);
}

TEST(CpuTest, ConditionalBranchTakenAndNotTaken) {
  Assembler as(kCodeBase);
  auto else_ = as.make_label();
  auto end = as.make_label();
  as.movi(Reg::rax, 5);
  as.cmpi(Reg::rax, 5);
  as.jne(else_);
  as.movi(Reg::rbx, 1);  // taken path (equal)
  as.jmp(end);
  as.bind(else_);
  as.movi(Reg::rbx, 2);
  as.bind(end);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rbx), 1u);
}

TEST(CpuTest, SignedVersusUnsignedBranches) {
  // -1 < 1 signed, but 0xffff... > 1 unsigned.
  Assembler as(kCodeBase);
  auto sl = as.make_label();
  auto end = as.make_label();
  as.movi(Reg::rax, -1);
  as.cmpi(Reg::rax, 1);
  as.jl(sl);
  as.movi(Reg::rbx, 0);
  as.jmp(end);
  as.bind(sl);
  as.movi(Reg::rbx, 1);  // signed-less taken
  as.bind(end);
  as.cmpi(Reg::rax, 1);
  auto below = as.make_label();
  auto end2 = as.make_label();
  as.jb(below);
  as.movi(Reg::rcx, 1);  // unsigned: not below
  as.jmp(end2);
  as.bind(below);
  as.movi(Reg::rcx, 0);
  as.bind(end2);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rbx), 1u);
  EXPECT_EQ(cpu.reg(Reg::rcx), 1u);
}

TEST(CpuTest, LoopExecutesExactIterationCount) {
  Assembler as(kCodeBase);
  as.movi(Reg::rcx, 10);
  as.movi(Reg::rax, 0);
  auto top = as.here();
  as.addi(Reg::rax, 2);
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jg(top);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(1000).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rax), 20u);
}

TEST(CpuTest, CallRetUsesStack) {
  Assembler as(kCodeBase);
  as.global("main");
  as.call("fn");
  as.addi(Reg::rax, 1);
  as.hlt();
  as.global("fn");
  as.movi(Reg::rax, 41);
  as.ret();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rax), 42u);
  EXPECT_EQ(cpu.reg(Reg::rsp), kStackTop);  // balanced
}

TEST(CpuTest, PushPopRoundTrip) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 7);
  as.push(Reg::rax);
  as.movi(Reg::rax, 0);
  as.pop(Reg::rbx);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rbx), 7u);
}

TEST(CpuTest, StackOverflowRaisesStackFault) {
  Assembler as(kCodeBase);
  as.movi(Reg::rcx, 0x1000);
  auto top = as.here();
  as.push(Reg::rcx);
  as.jmp(top);
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100000);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::StackFault);
}

TEST(CpuTest, RipOutsideCodeRaisesPageFault) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 0x9999999);
  as.jmp_reg(Reg::rax);
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::PageFault);
  EXPECT_EQ(info.trap.fault_addr, 0x9999999u);
}

TEST(CpuTest, UdPaddingRaisesInvalidOpcode) {
  Assembler as(kCodeBase);
  as.nop();
  as.pad_ud(1);
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::InvalidOpcode);
}

TEST(CpuTest, WatchdogFiresOnInfiniteLoop) {
  Assembler as(kCodeBase);
  auto top = as.here();
  as.jmp(top);
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(500);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::Watchdog);
}

TEST(CpuTest, AssertionPassesWhenConditionHolds) {
  Assembler as(kCodeBase);
  as.movi(Reg::rbx, 5);
  as.assert_le(Reg::rbx, 19, 1);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  EXPECT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
}

TEST(CpuTest, AssertionFiresWithId) {
  Assembler as(kCodeBase);
  as.movi(Reg::rbx, 25);
  as.assert_le(Reg::rbx, 19, 7);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, TrapKind::AssertFailed);
  EXPECT_EQ(info.trap.aux, 7u);
}

TEST(CpuTest, AssertEqRegisterForm) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 3);
  as.movi(Reg::rbx, 4);
  as.assert_eq(Reg::rax, Reg::rbx, 9);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.run(100);
  ASSERT_EQ(info.status, StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.aux, 9u);
}

TEST(CpuTest, RdtscMonotonicallyAdvances) {
  Assembler as(kCodeBase);
  as.rdtsc(Reg::rax);
  as.nop();
  as.rdtsc(Reg::rbx);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);
  EXPECT_EQ(cpu.reg(Reg::rbx) - cpu.reg(Reg::rax), 2 * kTscPerStep);
}

TEST(CpuTest, BitFlipChangesRegister) {
  Assembler as(kCodeBase);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  cpu.set_reg(Reg::rcx, 0b100);
  cpu.flip_bit(Reg::rcx, 2);
  EXPECT_EQ(cpu.reg(Reg::rcx), 0u);
  cpu.flip_bit(Reg::rcx, 63);
  EXPECT_EQ(cpu.reg(Reg::rcx), Word{1} << 63);
}

TEST(CpuTest, BitFlipInLoopCounterAddsExtraInstructions) {
  // Fig. 5(a): a fault in rcx, the counter of a rep-mov style loop, adds
  // extra dynamic instructions to the trace.
  Assembler as(kCodeBase);
  as.movi(Reg::rcx, 4);
  auto top = as.here();
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jg(top);
  as.hlt();
  Fixture f(as);

  Cpu golden = f.make_cpu();
  ASSERT_EQ(golden.run(10000).status, StepInfo::Status::Halted);
  const std::uint64_t golden_steps = golden.steps_executed();

  Cpu faulty = f.make_cpu();
  // Execute the first instruction (rcx = 4), then flip bit 3: rcx = 12.
  faulty.step();
  faulty.flip_bit(Reg::rcx, 3);
  ASSERT_EQ(faulty.run(10000).status, StepInfo::Status::Halted);
  EXPECT_GT(faulty.steps_executed(), golden_steps);
  EXPECT_EQ(faulty.steps_executed() - golden_steps, 8u * 3u);
}

TEST(CpuTest, TraceRecordsControlPath) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 1);
  as.nop();
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  std::vector<Addr> trace;
  cpu.set_trace(&trace);
  cpu.run(100);
  ASSERT_EQ(trace.size(), 2u);  // hlt does not retire
  EXPECT_EQ(trace[0], kCodeBase);
  EXPECT_EQ(trace[1], kCodeBase + 1);
}

TEST(CpuTest, StepInfoReportsReadAndWrittenRegisters) {
  Assembler as(kCodeBase);
  as.mov(Reg::rax, Reg::rbx);
  as.hlt();
  Fixture f(as);
  Cpu cpu = f.make_cpu();
  auto info = cpu.step();
  EXPECT_EQ(info.read_mask, reg_bit(Reg::rbx));
  EXPECT_EQ(info.written_mask, reg_bit(Reg::rax));
}

}  // namespace
}  // namespace xentry::sim
