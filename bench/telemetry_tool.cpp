// Telemetry stream toolbox: merge / verify / tail over persisted
// campaign record streams and metrics-snapshot sidecars.
//
// A large study runs as many independent workers (one micro_campaign
// --records-out each, possibly on different hosts); each worker leaves
// per-shard record streams and, when checkpointed, metrics sidecars.
// This tool is the read side of that pipeline:
//
//   merge   fold any number of workers' streams into one report —
//           record counts, the exact reweighted rates (WeightedRates
//           merges by field-wise sum, so the merged rates equal the
//           rates of the concatenated streams), coverage breakdown, and
//           the merged metrics registry from the snapshot sidecars.
//   verify  check a stream against its checkpoint journal: every
//           journaled shard's record count and running digest must match
//           what the persisted frames decode to, and the whole stream
//           must decode cleanly.  Optionally pin the full-stream digest
//           against a known value (--digest, e.g. micro_campaign's
//           records_digest output).  Non-zero exit on any mismatch —
//           CI's kill/resume smoke runs this.
//   tail    decode the stream and print the last N records as JSONL
//           (whatever the on-disk format), for eyeballing a campaign.
//
// Shard discovery probes `<base>.shard<N>.<ext>` from N = 0 upward; the
// first missing index ends the worker.  Streams are read in shard order,
// which is the campaign's deterministic merge order.
//
// Usage:
//   telemetry_tool merge  --records BASE [--records BASE ...]
//                         [--format jsonl|bin] [--snapshots FILE ...]
//                         [-o REPORT.json]
//   telemetry_tool verify --records BASE [--format jsonl|bin]
//                         [--checkpoint JOURNAL] [--digest HEX16]
//   telemetry_tool tail   --records BASE [--format jsonl|bin] [-n N]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/record_io.hpp"
#include "fault/stats.hpp"
#include "obs/record_sink.hpp"
#include "obs/snapshot.hpp"

namespace {

using namespace xentry;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// One worker's persisted stream: per-shard raw bytes, in shard order.
struct WorkerStream {
  std::string base;
  std::vector<std::string> shard_data;
};

std::optional<WorkerStream> load_worker(const std::string& base,
                                        obs::RecordFormat fmt) {
  WorkerStream w;
  w.base = base;
  for (std::size_t shard = 0;; ++shard) {
    auto data =
        read_file(obs::ShardedFileSink::shard_path(base, fmt, shard));
    if (!data.has_value()) break;
    w.shard_data.push_back(std::move(*data));
  }
  if (w.shard_data.empty()) {
    std::fprintf(stderr, "telemetry_tool: no shard files found for '%s'\n",
                 base.c_str());
    return std::nullopt;
  }
  return w;
}

struct Flags {
  std::vector<std::string> records;
  std::vector<std::string> snapshots;
  obs::RecordFormat format = obs::RecordFormat::kJsonl;
  std::string checkpoint;
  std::string out;
  std::optional<std::uint64_t> digest;
  int tail_n = 10;
  bool ok = true;
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "telemetry_tool: %s needs a value\n",
                     arg.c_str());
        f.ok = false;
        return "";
      }
      return argv[++i];
    };
    if (arg == "--records") {
      f.records.emplace_back(value());
    } else if (arg == "--snapshots") {
      f.snapshots.emplace_back(value());
    } else if (arg == "--checkpoint") {
      f.checkpoint = value();
    } else if (arg == "-o" || arg == "--out") {
      f.out = value();
    } else if (arg == "-n") {
      f.tail_n = std::atoi(value());
    } else if (arg == "--digest") {
      f.digest = std::strtoull(value(), nullptr, 16);
    } else if (arg == "--format") {
      const auto fmt = obs::record_format_from_name(value());
      if (!fmt.has_value()) {
        std::fprintf(stderr,
                     "telemetry_tool: unknown --format (want jsonl|bin)\n");
        f.ok = false;
      } else {
        f.format = *fmt;
      }
    } else {
      std::fprintf(stderr, "telemetry_tool: unknown argument '%s'\n",
                   arg.c_str());
      f.ok = false;
    }
  }
  if (f.records.empty()) {
    std::fprintf(stderr, "telemetry_tool: at least one --records BASE "
                         "is required\n");
    f.ok = false;
  }
  return f;
}

int cmd_merge(const Flags& f) {
  std::size_t total_records = 0, total_shards = 0;
  fault::WeightedRates rates;
  std::vector<fault::InjectionRecord> all;
  std::vector<std::pair<std::string, std::uint64_t>> worker_digests;
  for (const std::string& base : f.records) {
    const auto w = load_worker(base, f.format);
    if (!w.has_value()) return 1;
    std::vector<fault::InjectionRecord> records;
    for (const std::string& data : w->shard_data) {
      if (!fault::decode_records(data, f.format, records)) {
        std::fprintf(stderr,
                     "telemetry_tool: undecodable trailing bytes in a "
                     "shard stream of '%s'\n",
                     base.c_str());
        return 1;
      }
    }
    total_shards += w->shard_data.size();
    total_records += records.size();
    worker_digests.emplace_back(base, fault::records_digest(records));
    // Rates merge by field-wise sum: the merged answer equals the rates
    // of the concatenated streams without holding all workers at once.
    rates.merge_from(fault::weighted_rates(records));
    all.insert(all.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  const fault::CoverageBreakdown cov = fault::coverage_breakdown(all);

  obs::MetricsRegistry metrics;
  for (const std::string& path : f.snapshots) {
    const auto text = read_file(path);
    if (!text.has_value()) {
      std::fprintf(stderr, "telemetry_tool: cannot read snapshots '%s'\n",
                   path.c_str());
      return 1;
    }
    metrics.merge_from(obs::merge_snapshots(obs::read_snapshots(*text)));
  }

  std::FILE* os = stdout;
  if (!f.out.empty()) {
    os = std::fopen(f.out.c_str(), "w");
    if (os == nullptr) {
      std::fprintf(stderr, "telemetry_tool: cannot open '%s'\n",
                   f.out.c_str());
      return 1;
    }
  }
  std::fprintf(os,
               "{\n"
               "  \"tool\": \"telemetry_tool merge\",\n"
               "  \"workers\": %zu,\n"
               "  \"shards\": %zu,\n"
               "  \"records\": %zu,\n"
               "  \"worker_digests\": {",
               f.records.size(), total_shards, total_records);
  for (std::size_t i = 0; i < worker_digests.size(); ++i) {
    std::fprintf(os, "%s\n    \"%s\": \"%016" PRIx64 "\"",
                 i == 0 ? "" : ",", worker_digests[i].first.c_str(),
                 worker_digests[i].second);
  }
  std::fprintf(os,
               "\n  },\n"
               "  \"effective_injections\": %.1f,\n"
               "  \"weighted_masked_rate\": %.6f,\n"
               "  \"weighted_sdc_rate\": %.6f,\n"
               "  \"weighted_crash_rate\": %.6f,\n"
               "  \"weighted_manifested_rate\": %.6f,\n"
               "  \"weighted_detected_rate\": %.6f,\n"
               "  \"manifested\": %zu,\n"
               "  \"detected_coverage\": %.6f,\n"
               "  \"undetected\": %zu,\n",
               rates.effective_injections,
               rates.rate(fault::Consequence::Masked),
               rates.rate(fault::Consequence::AppSdc),
               rates.rate(fault::Consequence::AppCrash),
               rates.manifested_rate(), rates.detected_rate(),
               cov.manifested, cov.coverage(), cov.undetected);
  if (!f.snapshots.empty()) {
    // The merged registry as nested JSON (counters/gauges/histograms).
    std::ostringstream mjson;
    metrics.write_json(mjson);
    std::fprintf(os, "  \"metrics\": %s,\n", mjson.str().c_str());
  }
  std::fprintf(os, "  \"snapshot_streams\": %zu\n}\n", f.snapshots.size());
  if (os != stdout) std::fclose(os);
  return 0;
}

int cmd_verify(const Flags& f) {
  if (f.records.size() != 1) {
    std::fprintf(stderr,
                 "telemetry_tool: verify takes exactly one --records BASE "
                 "(the journal is per campaign)\n");
    return 2;
  }
  const auto w = load_worker(f.records[0], f.format);
  if (!w.has_value()) return 1;

  bool ok = true;
  std::uint64_t full_digest = fault::kDigestBasis;
  std::size_t total = 0;
  std::vector<std::vector<fault::InjectionRecord>> per_shard(
      w->shard_data.size());
  for (std::size_t s = 0; s < w->shard_data.size(); ++s) {
    if (!fault::decode_records(w->shard_data[s], f.format, per_shard[s])) {
      std::fprintf(stderr,
                   "FAIL: shard %zu has undecodable trailing bytes\n", s);
      ok = false;
    }
    for (const fault::InjectionRecord& r : per_shard[s]) {
      full_digest = fault::digest_update(full_digest, r);
    }
    total += per_shard[s].size();
  }

  if (!f.checkpoint.empty()) {
    const fault::JournalContents journal = fault::read_journal(f.checkpoint);
    if (!journal.valid) {
      std::fprintf(stderr, "FAIL: no parseable journal at '%s'\n",
                   f.checkpoint.c_str());
      ok = false;
    } else {
      if (journal.shards.size() != w->shard_data.size()) {
        std::fprintf(stderr,
                     "FAIL: journal expects %zu shards, found %zu stream "
                     "files\n",
                     journal.shards.size(), w->shard_data.size());
        ok = false;
      }
      const std::size_t n =
          std::min(journal.shards.size(), w->shard_data.size());
      for (std::size_t s = 0; s < n; ++s) {
        if (!journal.shards[s].has_value()) continue;  // never checkpointed
        const fault::ShardCheckpoint& ck = *journal.shards[s];
        if (per_shard[s].size() < ck.records_written) {
          std::fprintf(stderr,
                       "FAIL: shard %zu holds %zu records, journal says "
                       ">= %" PRIu64 "\n",
                       s, per_shard[s].size(), ck.records_written);
          ok = false;
          continue;
        }
        // The journaled digest covers the first records_written records —
        // frames past it are post-checkpoint (rewritten on resume).
        std::uint64_t h = fault::kDigestBasis;
        for (std::uint64_t i = 0; i < ck.records_written; ++i) {
          h = fault::digest_update(h, per_shard[s][i]);
        }
        if (h != ck.digest) {
          std::fprintf(stderr,
                       "FAIL: shard %zu digest %016" PRIx64
                       " != journaled %016" PRIx64 "\n",
                       s, h, ck.digest);
          ok = false;
        }
      }
      // Sink backpressure audit: the metrics sidecars next to the
      // journal carry the writer's own obs.sink.* counters.  A nonzero
      // drop count means frames never reached the stream, so a clean
      // digest over what DID land would be a hollow verification.
      // Missing sidecars are fine (metrics off, or units owned by
      // another fleet worker).
      obs::MetricsRegistry side;
      for (std::size_t s = 0; s < journal.shards.size(); ++s) {
        const auto text =
            read_file(fault::snapshot_sidecar_path(f.checkpoint,
                                                   static_cast<int>(s)));
        if (!text.has_value() || text->empty()) continue;
        side.merge_from(obs::merge_snapshots(obs::read_snapshots(*text)));
      }
      if (const obs::Counter* dropped = side.find_counter("obs.sink.dropped");
          dropped != nullptr && dropped->value() > 0) {
        std::fprintf(stderr,
                     "FAIL: metrics sidecars report %" PRIu64
                     " dropped record-sink frame(s) — the persisted stream "
                     "is incomplete (write-time backpressure or I/O "
                     "failure), so this campaign's records cannot be "
                     "trusted as complete\n",
                     dropped->value());
        ok = false;
      }
    }
  }
  if (f.digest.has_value() && full_digest != *f.digest) {
    std::fprintf(stderr,
                 "FAIL: stream digest %016" PRIx64 " != expected %016" PRIx64
                 "\n",
                 full_digest, *f.digest);
    ok = false;
  }

  std::printf(
      "{\n"
      "  \"tool\": \"telemetry_tool verify\",\n"
      "  \"shards\": %zu,\n"
      "  \"records\": %zu,\n"
      "  \"records_digest\": \"%016" PRIx64 "\",\n"
      "  \"ok\": %s\n"
      "}\n",
      w->shard_data.size(), total, full_digest, ok ? "true" : "false");
  return ok ? 0 : 1;
}

int cmd_tail(const Flags& f) {
  if (f.records.size() != 1) {
    std::fprintf(stderr, "telemetry_tool: tail takes one --records BASE\n");
    return 2;
  }
  const auto w = load_worker(f.records[0], f.format);
  if (!w.has_value()) return 1;
  std::vector<fault::InjectionRecord> records;
  for (const std::string& data : w->shard_data) {
    fault::decode_records(data, f.format, records);
  }
  const std::size_t n =
      f.tail_n > 0 ? static_cast<std::size_t>(f.tail_n) : 10;
  const std::size_t first = records.size() > n ? records.size() - n : 0;
  std::string line;
  for (std::size_t i = first; i < records.size(); ++i) {
    line.clear();
    fault::encode_record(records[i], obs::RecordFormat::kJsonl, line);
    std::fputs(line.c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: telemetry_tool merge|verify|tail [flags]\n"
                 "  merge  --records BASE [--records BASE ...] "
                 "[--format jsonl|bin] [--snapshots FILE ...] [-o FILE]\n"
                 "  verify --records BASE [--format jsonl|bin] "
                 "[--checkpoint JOURNAL] [--digest HEX16]\n"
                 "  tail   --records BASE [--format jsonl|bin] [-n N]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  const Flags f = parse_flags(argc, argv, 2);
  if (!f.ok) return 2;
  if (cmd == "merge") return cmd_merge(f);
  if (cmd == "verify") return cmd_verify(f);
  if (cmd == "tail") return cmd_tail(f);
  std::fprintf(stderr, "telemetry_tool: unknown command '%s'\n", cmd.c_str());
  return 2;
}
