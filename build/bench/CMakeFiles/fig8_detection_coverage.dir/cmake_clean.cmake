file(REMOVE_RECURSE
  "CMakeFiles/fig8_detection_coverage.dir/fig8_detection_coverage.cpp.o"
  "CMakeFiles/fig8_detection_coverage.dir/fig8_detection_coverage.cpp.o.d"
  "fig8_detection_coverage"
  "fig8_detection_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_detection_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
