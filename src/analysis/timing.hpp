// Static timing-envelope analysis: sound per-handler [BCET, WCET] bounds.
//
// A per-instruction cycle model (base cost plus branch/load/store weights,
// seeded from the same CostParams-class constants the overhead model uses)
// is propagated over the control-flow graph as a five-clock cost vector —
// cycles, instructions retired, branches, loads, stores — mirroring the
// four hardware events of paper Table I plus the modeled cycle clock.
// Loop trip counts are inferred from the signed-interval analysis (a
// unique monotone writer whose value is interval-bounded at the loop body
// entry bounds the iteration count); loops the analysis cannot bound
// soundly widen to "no envelope" for every handler that can reach them,
// never to an unsound finite bound.  The result is a per-entry-point
// envelope with *provably zero false positives* on fault-free runs: every
// fault-free activation's observed cost vector lies inside the envelope
// of its handler, so any observation outside it is evidence of a fault.
//
// The analysis is interprocedural by function summary: each function gets
// a [min, max] cost range per exit channel (Return for `ret`, Gate for
// `hlt`), composed bottom-up in reverse call order.  Tail jumps chain the
// target's channels; the multicall-style manual indirect call (push of a
// materialized return address + `jmp_reg` through a resolved target set)
// composes the union of the target summaries.  Recursion, irreducible
// flow, unresolved indirect jumps and unbounded loops all poison the
// summary rather than risk an unsound bound.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "analysis/cfg.hpp"
#include "sim/perf_counters.hpp"
#include "sim/program.hpp"

namespace xentry::analysis {

/// Deterministic per-instruction cycle weights.  The base cost matches
/// the simulator's one-tsc-per-step retirement; the class extras model
/// the relative latency of branches and memory traffic the way
/// xentry::CostParams models interception costs — parameters, not host
/// measurements.  Observed cycles are reconstructible from a PerfSnapshot
/// alone (the model is linear in the four counter classes), so the
/// runtime check needs no trace replay.
struct TimingCostModel {
  std::int64_t base_cycles = 1;    ///< every retired instruction
  std::int64_t branch_extra = 2;   ///< is_branch: redirect penalty
  std::int64_t load_extra = 3;     ///< is_mem_load: cache-hit latency
  std::int64_t store_extra = 2;    ///< is_mem_store: store-buffer slot

  std::int64_t cost_of(sim::Opcode op) const {
    if (op == sim::Opcode::Hlt) return 0;  // the VM-entry gate: not retired
    return base_cycles + (sim::is_branch(op) ? branch_extra : 0) +
           (sim::is_mem_load(op) ? load_extra : 0) +
           (sim::is_mem_store(op) ? store_extra : 0);
  }

  /// Modeled cycles of a whole run, from the VM-entry counter readout.
  std::int64_t cycles_from_counters(const sim::PerfSnapshot& c) const {
    return base_cycles * static_cast<std::int64_t>(c.inst_retired) +
           branch_extra * static_cast<std::int64_t>(c.branches) +
           load_extra * static_cast<std::int64_t>(c.loads) +
           store_extra * static_cast<std::int64_t>(c.stores);
  }

  friend bool operator==(const TimingCostModel&,
                         const TimingCostModel&) = default;
};

/// The five independent "clocks" (hvdetecc-style multi-clock checking):
/// index 0 is the modeled cycle clock, 1..4 the counter classes.
inline constexpr int kNumClocks = 5;
enum : int { kClockCycles = 0, kClockInsts, kClockBranches, kClockLoads,
             kClockStores };

std::string_view clock_name(int clock);

/// Inclusive [lo, hi] bound of one clock over all fault-free paths.
struct ClockEnvelope {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  friend bool operator==(const ClockEnvelope&, const ClockEnvelope&) = default;
};

/// Envelope of one handler entry point, Gate channel (entry to VM entry).
struct TimingEnvelope {
  /// Every loop on every entry-to-gate path has a proven trip bound and
  /// the bounds are finite; when false the runtime check is disabled for
  /// this entry (soundly: no claim is made, so nothing can fire).
  bool valid = false;
  ClockEnvelope clocks[kNumClocks] = {};

  const ClockEnvelope& cycles() const { return clocks[kClockCycles]; }

  /// True when the observed snapshot lies inside every clock's bound.
  bool contains(const TimingCostModel& model,
                const sim::PerfSnapshot& c) const;
};

/// All envelopes of one program, keyed by entry-point address.
struct TimingEnvelopes {
  TimingCostModel model;
  std::map<sim::Addr, TimingEnvelope> by_entry;

  /// Envelope for a handler entry, or nullptr when none was proven.
  const TimingEnvelope* at(sim::Addr entry) const {
    auto it = by_entry.find(entry);
    return it == by_entry.end() ? nullptr : &it->second;
  }

  std::size_t valid_count() const;
};

/// Outcome of one runtime envelope check (consumed by Technique::Timing).
struct TimingCheckResult {
  bool checked = false;      ///< an envelope existed and was applied
  bool cycle_miss = false;   ///< modeled cycle clock outside its bound
  bool counter_miss = false; ///< any counter clock outside its bound
  int first_bad_clock = -1;  ///< lowest-index violated clock, -1 if none

  bool ok() const { return !cycle_miss && !counter_miss; }
};

/// Checks one VM entry's counter readout against the entry's envelope.
/// Entries without a valid envelope report checked=false and pass.
TimingCheckResult check_timing(const TimingEnvelopes& envelopes,
                               sim::Addr entry, const sim::PerfSnapshot& c);

/// Computes envelopes for every function entry point of the program.
/// `cfg` must be the graph of the same program (JmpR target resolution is
/// read back from its edges).
TimingEnvelopes compute_timing_envelopes(const sim::Program& program,
                                         const ControlFlowGraph& cfg,
                                         const TimingCostModel& model = {});

}  // namespace xentry::analysis
