// Threaded-code compiler: Program + superblock tiling -> OpEntry stream.
//
// Compilation is a straight-line pass — all the policy (where superblocks
// start and end) is decided by the caller's tiling, which is validated
// here against the one invariant the executor's accounting depends on:
// within a superblock every non-final op falls through, and no superblock
// boundary splits a guaranteed fall-through edge.
#include "sim/jit/compiled_program.hpp"

#include <stdexcept>
#include <string>

#include "sim/program.hpp"

namespace xentry::sim::jit {

namespace {

Handler base_handler(Opcode op) {
  switch (op) {
#define XENTRY_JIT_MAP_CASE(name) \
  case Opcode::name:              \
    return Handler::name;
    XENTRY_JIT_MAP_CASE(Nop)
    XENTRY_JIT_MAP_CASE(MovRR)
    XENTRY_JIT_MAP_CASE(MovRI)
    XENTRY_JIT_MAP_CASE(Load)
    XENTRY_JIT_MAP_CASE(Store)
    XENTRY_JIT_MAP_CASE(Push)
    XENTRY_JIT_MAP_CASE(Pop)
    XENTRY_JIT_MAP_CASE(AddRR)
    XENTRY_JIT_MAP_CASE(AddRI)
    XENTRY_JIT_MAP_CASE(SubRR)
    XENTRY_JIT_MAP_CASE(SubRI)
    XENTRY_JIT_MAP_CASE(MulRR)
    XENTRY_JIT_MAP_CASE(DivR)
    XENTRY_JIT_MAP_CASE(AndRR)
    XENTRY_JIT_MAP_CASE(AndRI)
    XENTRY_JIT_MAP_CASE(OrRR)
    XENTRY_JIT_MAP_CASE(OrRI)
    XENTRY_JIT_MAP_CASE(XorRR)
    XENTRY_JIT_MAP_CASE(XorRI)
    XENTRY_JIT_MAP_CASE(ShlRI)
    XENTRY_JIT_MAP_CASE(ShrRI)
    XENTRY_JIT_MAP_CASE(ShlRR)
    XENTRY_JIT_MAP_CASE(ShrRR)
    XENTRY_JIT_MAP_CASE(Neg)
    XENTRY_JIT_MAP_CASE(Not)
    XENTRY_JIT_MAP_CASE(Inc)
    XENTRY_JIT_MAP_CASE(Dec)
    XENTRY_JIT_MAP_CASE(CmpRR)
    XENTRY_JIT_MAP_CASE(CmpRI)
    XENTRY_JIT_MAP_CASE(TestRR)
    XENTRY_JIT_MAP_CASE(TestRI)
    XENTRY_JIT_MAP_CASE(Jmp)
    XENTRY_JIT_MAP_CASE(JmpR)
    XENTRY_JIT_MAP_CASE(Je)
    XENTRY_JIT_MAP_CASE(Jne)
    XENTRY_JIT_MAP_CASE(Jl)
    XENTRY_JIT_MAP_CASE(Jle)
    XENTRY_JIT_MAP_CASE(Jg)
    XENTRY_JIT_MAP_CASE(Jge)
    XENTRY_JIT_MAP_CASE(Jb)
    XENTRY_JIT_MAP_CASE(Jae)
    XENTRY_JIT_MAP_CASE(Call)
    XENTRY_JIT_MAP_CASE(Ret)
    XENTRY_JIT_MAP_CASE(Rdtsc)
    XENTRY_JIT_MAP_CASE(Hlt)
    XENTRY_JIT_MAP_CASE(AssertLeRI)
    XENTRY_JIT_MAP_CASE(AssertGeRI)
    XENTRY_JIT_MAP_CASE(AssertEqRI)
    XENTRY_JIT_MAP_CASE(AssertNeRI)
    XENTRY_JIT_MAP_CASE(AssertEqRR)
    XENTRY_JIT_MAP_CASE(AssertLtRR)
    XENTRY_JIT_MAP_CASE(Ud)
#undef XENTRY_JIT_MAP_CASE
  }
  throw std::invalid_argument("jit::compile: unknown opcode");
}

[[noreturn]] void bad_tiling(const std::string& what) {
  throw std::invalid_argument("jit::compile: invalid superblock tiling: " +
                              what);
}

/// Retired instructions if execution reaches this op within a run: every
/// op retires except Hlt (stops before retiring) and Ud (faults at
/// fetch).  Both can only be the final slot of a superblock.
bool retires(Opcode op) { return op != Opcode::Hlt && op != Opcode::Ud; }

/// Conditional-branch ordinal matching both the Jcc declaration order in
/// the ISA handler list and the per-compare Fuse* token blocks.
int jcc_ordinal(Opcode op) {
  switch (op) {
    case Opcode::Je: return 0;
    case Opcode::Jne: return 1;
    case Opcode::Jl: return 2;
    case Opcode::Jle: return 3;
    case Opcode::Jg: return 4;
    case Opcode::Jge: return 5;
    case Opcode::Jb: return 6;
    case Opcode::Jae: return 7;
    default: return -1;
  }
}

// The offset arithmetic below leans on each compare kind's eight fused
// variants being contiguous in Jcc order.
static_assert(static_cast<int>(Handler::FuseCmpRRJae) ==
              static_cast<int>(Handler::FuseCmpRRJe) + 7);
static_assert(static_cast<int>(Handler::FuseCmpRIJae) ==
              static_cast<int>(Handler::FuseCmpRIJe) + 7);
static_assert(static_cast<int>(Handler::FuseTestRRJae) ==
              static_cast<int>(Handler::FuseTestRRJe) + 7);
static_assert(static_cast<int>(Handler::FuseTestRIJae) ==
              static_cast<int>(Handler::FuseTestRIJe) + 7);

/// Fused handler token for compare `cmp` followed by conditional branch
/// `jcc`, or -1 when the pair does not macro-fuse.
int fused_handler(Opcode cmp, Opcode jcc) {
  const int j = jcc_ordinal(jcc);
  if (j < 0) return -1;
  switch (cmp) {
    case Opcode::CmpRR:
      return static_cast<int>(Handler::FuseCmpRRJe) + j;
    case Opcode::CmpRI:
      return static_cast<int>(Handler::FuseCmpRIJe) + j;
    case Opcode::TestRR:
      return static_cast<int>(Handler::FuseTestRRJe) + j;
    case Opcode::TestRI:
      return static_cast<int>(Handler::FuseTestRIJe) + j;
    default:
      return -1;
  }
}

}  // namespace

bool CompiledProgram::matches(const Program& program) const {
  return base == program.base() && code_size == program.size() &&
         signature == program_text_signature(program);
}

std::shared_ptr<const CompiledProgram> compile(
    const Program& program, const std::vector<Superblock>& superblocks) {
  auto cp = std::make_shared<CompiledProgram>();
  const Addr base = program.base();
  const std::size_t n = program.size();
  cp->base = base;
  cp->code_size = static_cast<std::uint32_t>(n);
  cp->signature = program_text_signature(program);
  cp->superblocks = superblocks;
  cp->ops.assign(n + 1, OpEntry{});

  const auto op_at = [&](std::size_t off) { return program.at(base + off).op; };

  // Validate: the tiling must cover [0, n) contiguously, keep every
  // non-final op fall-through-capable, and never split a fall-through
  // edge (maximality — a boundary there would desynchronize the prefix
  // accounting for control that strides across it).
  std::size_t expect = 0;
  for (const Superblock& sb : superblocks) {
    if (sb.first != expect || sb.last < sb.first || sb.last >= n) {
      bad_tiling("superblocks must tile the code image contiguously");
    }
    for (std::uint32_t i = sb.first; i < sb.last; ++i) {
      if (!can_fall_through(op_at(i))) {
        bad_tiling("superblock continues past a non-fall-through op");
      }
    }
    if (sb.last + 1 < n && can_fall_through(op_at(sb.last))) {
      bad_tiling("superblock boundary splits a fall-through edge");
    }
    expect = sb.last + 1;
  }
  if (expect != n) {
    bad_tiling("superblocks do not cover the whole code image");
  }

  // Per-superblock accounting prefixes and worst-case remaining retires.
  for (const Superblock& sb : superblocks) {
    std::uint32_t r = 0;
    std::uint32_t b = 0;
    std::uint32_t l = 0;
    std::uint32_t s = 0;
    for (std::uint32_t i = sb.first; i <= sb.last; ++i) {
      OpEntry& e = cp->ops[i];
      e.pre_retired = r;
      e.pre_branches = b;
      e.pre_loads = l;
      e.pre_stores = s;
      const Instruction& insn = program.at(base + i);
      if (retires(insn.op)) {
        ++r;
        b += is_branch(insn.op) ? 1u : 0u;
        l += is_mem_load(insn.op) ? 1u : 0u;
        s += is_mem_store(insn.op) ? 1u : 0u;
      }
    }
    // The sentinel continues the final superblock's prefixes when the
    // last op can fall off the end of the image.
    if (sb.last + 1 == n && can_fall_through(op_at(sb.last))) {
      OpEntry& end = cp->ops[n];
      end.pre_retired = r;
      end.pre_branches = b;
      end.pre_loads = l;
      end.pre_stores = s;
    }
    std::uint32_t rem = 0;
    for (std::uint32_t i = sb.last;; --i) {
      if (retires(op_at(i))) ++rem;
      cp->ops[i].sb_remaining = rem;
      if (i == sb.first) break;
    }
  }

  // Handlers and operands.
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& insn = program.at(base + i);
    OpEntry& e = cp->ops[i];
    e.r1 = static_cast<std::uint8_t>(insn.r1);
    e.r2 = static_cast<std::uint8_t>(insn.r2);
    e.imm = insn.imm;
    e.aux = insn.aux;
    Handler h = base_handler(insn.op);
    if (insn.op == Opcode::Jmp || insn.op == Opcode::Call ||
        is_cond_branch(insn.op)) {
      const Addr off = static_cast<Addr>(insn.imm) - base;
      e.target = off < n ? static_cast<std::uint32_t>(off) : kNoTarget;
    }
    if ((regs_read(insn) & reg_bit(Reg::rip)) != 0) {
      // The executor keeps rip implicit in the stream cursor; the rare
      // ops that read it as a data operand get a SyncRip prefix that
      // materializes it, then chains to the real handler.  Direct
      // branches never read rip, so `target` is free to carry the
      // chained handler token.
      e.target = static_cast<std::uint32_t>(h);
      h = Handler::SyncRip;
    }
    e.handler = static_cast<std::uint16_t>(h);
  }
  cp->ops[n].handler = static_cast<std::uint16_t>(Handler::OffEnd);

  // Macro-fusion: a compare/test whose fall-through successor is a
  // conditional branch executes both in one dispatch.  The branch slot
  // keeps its plain token (indirect entry onto the branch still works),
  // and the pair never straddles a superblock boundary because the
  // compare always falls through.  Skip compares that got a SyncRip
  // prefix — their `target` already carries the chained token.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Opcode cmp = op_at(i);
    const int fused = fused_handler(cmp, op_at(i + 1));
    if (fused >= 0 &&
        cp->ops[i].handler == static_cast<std::uint16_t>(base_handler(cmp))) {
      cp->ops[i].handler = static_cast<std::uint16_t>(fused);
    }
  }

  return cp;
}

}  // namespace xentry::sim::jit
