// The full Xentry lifecycle, end to end:
//
//   1. run a fault-injection training campaign (paper Section III-B),
//   2. train the RandomTree classifier and compile it to integer rules,
//   3. persist the model (the artifact you would ship into a hypervisor),
//   4. deploy it in a fresh evaluation campaign and report coverage.
//
//   $ ./train_and_deploy [training_injections] [eval_injections]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "fault/campaign.hpp"
#include "fault/report.hpp"
#include "fault/stats.hpp"
#include "fault/training.hpp"

using namespace xentry;

int main(int argc, char** argv) {
  const int train_n = argc > 1 ? std::atoi(argv[1]) : 23400;
  const int eval_n = argc > 2 ? std::atoi(argv[2]) : 30000;

  // -- 1. training campaign -------------------------------------------------
  std::printf("running training campaign (%d injections)...\n", train_n);
  fault::CampaignConfig train_cfg;
  train_cfg.injections = train_n;
  train_cfg.seed = 101;
  train_cfg.collect_dataset = true;
  fault::CampaignResult train_res = fault::run_campaign(train_cfg);
  std::printf("  %zu samples collected (%zu incorrect)\n",
              train_res.dataset.size(),
              train_res.dataset.count(ml::Label::Incorrect));

  // -- 2. train -----------------------------------------------------------------
  fault::TrainedDetector det = fault::train_detector(train_res.dataset);
  std::printf("  model: accuracy=%.2f%% fp=%.2f%% fn=%.1f%% "
              "(%zu rules, worst case %d comparisons/entry)\n",
              100 * det.test_eval.accuracy(),
              100 * det.test_eval.false_positive_rate(),
              100 * det.test_eval.false_negative_rate(), det.rules.size(),
              det.rules.max_comparisons());

  // -- 3. persist ----------------------------------------------------------------
  {
    std::ofstream model_file("xentry_model.rules");
    model_file << det.rules.serialize();
    std::ofstream data_file("xentry_training.csv");
    train_res.dataset.save_csv(data_file);
  }
  std::printf("  wrote xentry_model.rules and xentry_training.csv\n");

  // -- 4. deploy & evaluate --------------------------------------------------------
  std::printf("running evaluation campaign (%d injections)...\n", eval_n);
  ml::RuleSet deployed;
  {
    std::ifstream model_file("xentry_model.rules");
    std::string text((std::istreambuf_iterator<char>(model_file)),
                     std::istreambuf_iterator<char>());
    deployed = ml::RuleSet::deserialize(text);
  }
  fault::CampaignConfig eval_cfg;
  eval_cfg.injections = eval_n;
  eval_cfg.seed = 202;
  eval_cfg.model = deployed;
  fault::CampaignResult eval_res = fault::run_campaign(eval_cfg);

  const auto cov = fault::coverage_breakdown(eval_res.records);
  std::printf("\n  manifested errors: %zu of %zu injections\n",
              cov.manifested, eval_res.records.size());
  std::printf("  detected by hardware exceptions: %5.1f%%\n",
              100 * cov.share(cov.hw_exception));
  std::printf("  detected by software assertions: %5.1f%%\n",
              100 * cov.share(cov.sw_assertion));
  std::printf("  detected at VM transition:       %5.1f%%\n",
              100 * cov.share(cov.vm_transition));
  std::printf("  undetected:                      %5.1f%%\n",
              100 * cov.share(cov.undetected));
  std::printf("  overall coverage:                %5.1f%%\n",
              100 * cov.coverage());

  const auto by_tech = fault::latency_by_technique(eval_res.records);
  for (const auto& [tech, lats] : by_tech) {
    std::printf("  %s: %zu detections, p95 latency %lu instructions\n",
                std::string(technique_name(tech)).c_str(), lats.size(),
                (unsigned long)fault::latency_percentile(lats, 95));
  }

  // Raw records for external analysis (pandas/R).
  {
    std::ofstream records_file("xentry_records.csv");
    fault::write_records_csv(records_file, eval_res.records);
  }
  std::printf("\n  wrote xentry_records.csv\n\n%s",
              fault::summarize(eval_res.records).c_str());
  return 0;
}
