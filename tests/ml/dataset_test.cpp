#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace xentry::ml {
namespace {

Dataset tiny() {
  Dataset ds({"a", "b"});
  ds.add(std::array<std::int64_t, 2>{1, 10}, Label::Correct);
  ds.add(std::array<std::int64_t, 2>{2, 20}, Label::Incorrect);
  ds.add(std::array<std::int64_t, 2>{3, 30}, Label::Correct);
  return ds;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset ds = tiny();
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.value(1, 1), 20);
  EXPECT_EQ(ds.label(1), Label::Incorrect);
  EXPECT_EQ(ds.count(Label::Correct), 2u);
  EXPECT_EQ(ds.count(Label::Incorrect), 1u);
  auto row = ds.row(2);
  EXPECT_EQ(row[0], 3);
  EXPECT_EQ(row[1], 30);
}

TEST(DatasetTest, FeatureCountMismatchThrows) {
  Dataset ds({"a", "b"});
  std::array<std::int64_t, 1> one{1};
  EXPECT_THROW(ds.add(one, Label::Correct), std::invalid_argument);
}

TEST(DatasetTest, NoFeaturesThrows) {
  EXPECT_THROW(Dataset({}), std::invalid_argument);
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  Dataset ds({"x"});
  for (int i = 0; i < 100; ++i) {
    std::array<std::int64_t, 1> v{i};
    ds.add(v, i % 3 == 0 ? Label::Incorrect : Label::Correct);
  }
  auto [train, test] = ds.split(0.7, 42);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  EXPECT_EQ(train.count(Label::Incorrect) + test.count(Label::Incorrect),
            ds.count(Label::Incorrect));
}

TEST(DatasetTest, SplitIsDeterministicPerSeed) {
  Dataset ds({"x"});
  for (int i = 0; i < 50; ++i) {
    std::array<std::int64_t, 1> v{i};
    ds.add(v, Label::Correct);
  }
  auto [a1, b1] = ds.split(0.5, 7);
  auto [a2, b2] = ds.split(0.5, 7);
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1.value(i, 0), a2.value(i, 0));
  }
}

TEST(DatasetTest, SplitRejectsBadFraction) {
  Dataset ds = tiny();
  EXPECT_THROW(ds.split(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(ds.split(1.5, 1), std::invalid_argument);
}

TEST(DatasetTest, BootstrapPreservesSizeAndDrawsFromSource) {
  Dataset ds = tiny();
  std::mt19937_64 rng(3);
  Dataset bag = ds.bootstrap(rng);
  EXPECT_EQ(bag.size(), ds.size());
  for (std::size_t i = 0; i < bag.size(); ++i) {
    const std::int64_t a = bag.value(i, 0);
    EXPECT_TRUE(a == 1 || a == 2 || a == 3);
  }
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset ds = tiny();
  std::stringstream ss;
  ds.save_csv(ss);
  Dataset back = Dataset::load_csv(ss);
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.num_features(), ds.num_features());
  EXPECT_EQ(back.feature_names(), ds.feature_names());
  for (std::size_t r = 0; r < ds.size(); ++r) {
    EXPECT_EQ(back.label(r), ds.label(r));
    for (std::size_t c = 0; c < ds.num_features(); ++c) {
      EXPECT_EQ(back.value(r, c), ds.value(r, c));
    }
  }
}

TEST(DatasetTest, CsvRejectsMissingLabelColumn) {
  std::stringstream ss("a,b\n1,2\n");
  EXPECT_THROW(Dataset::load_csv(ss), std::runtime_error);
}

TEST(DatasetTest, AppendSplicesRowsInOrder) {
  Dataset a = tiny();
  Dataset b({"a", "b"});
  b.add(std::array<std::int64_t, 2>{4, 40}, Label::Incorrect);
  b.add(std::array<std::int64_t, 2>{5, 50}, Label::Correct);

  a.reserve(a.size() + b.size());
  a.append(b);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.value(3, 0), 4);
  EXPECT_EQ(a.value(3, 1), 40);
  EXPECT_EQ(a.label(3), Label::Incorrect);
  EXPECT_EQ(a.value(4, 0), 5);
  EXPECT_EQ(a.label(4), Label::Correct);
  // Source is untouched.
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.value(0, 0), 4);
}

TEST(DatasetTest, AppendEmptyAndToEmpty) {
  Dataset a = tiny();
  Dataset empty({"a", "b"});
  a.append(empty);
  EXPECT_EQ(a.size(), 3u);
  empty.append(a);
  EXPECT_EQ(empty.size(), 3u);
  EXPECT_EQ(empty.value(2, 1), 30);
}

TEST(DatasetTest, AppendRejectsSchemaMismatch) {
  Dataset a = tiny();
  Dataset renamed({"a", "c"});
  Dataset wider({"a", "b", "c"});
  EXPECT_THROW(a.append(renamed), std::invalid_argument);
  EXPECT_THROW(a.append(wider), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::ml
