#include "analysis/dataflow.hpp"

#include <gtest/gtest.h>

#include "analysis/artifacts.hpp"
#include "sim/assembler.hpp"

namespace xentry::analysis {
namespace {

using sim::Addr;
using sim::Assembler;
using sim::Instruction;
using sim::Opcode;
using sim::Program;
using sim::Reg;

// All programs here assemble at base 1000 so small immediates never
// alias code addresses (a MovRI immediate landing in code becomes a
// landing site and perturbs the CFG).

RegState top_state() {
  RegState s;
  s.fill(Interval::top());
  return s;
}

TEST(IntervalTest, JoinMeetAddSub) {
  const Interval a{1, 5}, b{3, 10};
  EXPECT_EQ(interval_join(a, b), (Interval{1, 10}));
  EXPECT_EQ(interval_meet(a, b), (Interval{3, 5}));
  EXPECT_EQ(interval_add(a, b), (Interval{4, 15}));
  EXPECT_EQ(interval_sub(a, b), (Interval{-9, 2}));
  // Potential overflow widens to top instead of wrapping.
  EXPECT_TRUE(interval_add(Interval{Interval::kMax - 1, Interval::kMax},
                           Interval::exact(2))
                  .is_top());
  // Empty intervals absorb in join and propagate through arithmetic.
  const Interval empty{1, 0};
  EXPECT_EQ(interval_join(empty, a), a);
  EXPECT_TRUE(interval_add(empty, a).is_empty());
}

TEST(ApplyInstructionTest, TransferFunctions) {
  RegState s = top_state();
  apply_instruction({Opcode::MovRI, Reg::rax, Reg::rax, 7, 0}, s);
  EXPECT_EQ(s[0], Interval::exact(7));
  apply_instruction({Opcode::AddRI, Reg::rax, Reg::rax, 3, 0}, s);
  EXPECT_EQ(s[0], Interval::exact(10));
  apply_instruction({Opcode::MovRR, Reg::rbx, Reg::rax, 0, 0}, s);
  EXPECT_EQ(s[1], Interval::exact(10));
  apply_instruction({Opcode::XorRR, Reg::rcx, Reg::rcx, 0, 0}, s);
  EXPECT_EQ(s[2], Interval::exact(0));
  apply_instruction({Opcode::AndRI, Reg::rdx, Reg::rdx, 15, 0}, s);
  EXPECT_EQ(s[3], (Interval{0, 15}));
  apply_instruction({Opcode::Load, Reg::rax, Reg::rbx, 0, 0}, s);
  EXPECT_TRUE(s[0].is_top());
  apply_instruction({Opcode::AssertLeRI, Reg::rax, Reg::rax, 100, 1}, s);
  EXPECT_EQ(s[0].hi, 100);
  apply_instruction({Opcode::AssertGeRI, Reg::rax, Reg::rax, 0, 2}, s);
  EXPECT_EQ(s[0], (Interval{0, 100}));
  apply_instruction({Opcode::ShrRI, Reg::rax, Reg::rax, 2, 0}, s);
  EXPECT_EQ(s[0], (Interval{0, 25}));
  apply_instruction({Opcode::Neg, Reg::rax, Reg::rax, 0, 0}, s);
  EXPECT_EQ(s[0], (Interval{-25, 0}));
  apply_instruction({Opcode::Not, Reg::rax, Reg::rax, 0, 0}, s);
  EXPECT_EQ(s[0], (Interval{-1, 24}));
}

TEST(DataflowTest, MoviSeedsFlowThroughArithmetic) {
  Assembler as(1000);
  as.global("main");
  as.movi(Reg::rax, 5);
  as.movi(Reg::rbx, 7);
  as.add(Reg::rax, Reg::rbx);
  as.hlt();
  const Program p = as.finish();
  const AnalysisArtifacts art = analyze_program(p);
  ASSERT_EQ(art.cfg.blocks.size(), 1u);
  EXPECT_TRUE(art.facts[0].reachable);
  EXPECT_TRUE(art.facts[0].in_valid);
  // Derived assertions at the Hlt gate capture the propagated values.
  const auto [lo, hi] = art.derived_at(p.base() + 3);
  ASSERT_EQ(hi - lo, 2u);
  EXPECT_EQ(art.derived[lo].reg, 0u);  // rax
  EXPECT_EQ(art.derived[lo].lo, 12);
  EXPECT_EQ(art.derived[lo].hi, 12);
  EXPECT_EQ(art.derived[lo + 1].reg, 1u);  // rbx
  EXPECT_EQ(art.derived[lo + 1].lo, 7);
  EXPECT_EQ(art.derived[lo].id, kDerivedAssertBase);
}

TEST(DataflowTest, BranchEdgesRefineIntervals) {
  Assembler as(1000);
  const auto small = as.make_label();
  as.global("main");
  as.load(Reg::rax, Reg::rbx);  // 1000: rax unknown
  as.cmpi(Reg::rax, 10);        // 1001
  as.jl(small);                 // 1002
  as.movi(Reg::rbx, 1);         // 1003: here rax >= 10
  as.hlt();                     // 1004
  as.bind(small);
  as.hlt();  // 1005: here rax <= 9
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);

  const std::uint32_t b_ge = cfg.block_at(1003);
  const std::uint32_t b_lt = cfg.block_at(1005);
  ASSERT_TRUE(df.facts[b_ge].in_valid);
  ASSERT_TRUE(df.facts[b_lt].in_valid);
  EXPECT_EQ(df.in_state[b_ge][0], (Interval{10, Interval::kMax}));
  EXPECT_EQ(df.in_state[b_lt][0], (Interval{Interval::kMin, 9}));
}

TEST(DataflowTest, GuardInAnotherBlockDoesNotRefine) {
  // The Jcc is itself a branch target, so it sits alone in its block
  // with the Cmp in a different one: refinement must stay conservative.
  Assembler as(1000);
  const auto jcc = as.make_label();
  const auto out = as.make_label();
  as.global("main");
  as.load(Reg::rax, Reg::rbx);  // 1000
  as.cmpi(Reg::rax, 10);        // 1001
  as.jmp(jcc);                  // 1002
  as.pad_ud(1);                 // 1003
  as.bind(jcc);
  as.jl(out);  // 1004: single-instruction block
  as.hlt();    // 1005
  as.bind(out);
  as.hlt();  // 1006
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  const std::uint32_t b_taken = cfg.block_at(1006);
  ASSERT_TRUE(df.facts[b_taken].in_valid);
  EXPECT_TRUE(df.in_state[b_taken][0].is_top());
}

TEST(DataflowTest, InfeasibleEdgeIsPruned) {
  Assembler as(1000);
  const auto dead = as.make_label();
  as.global("main");
  as.movi(Reg::rax, 5);  // 1000
  as.cmpi(Reg::rax, 5);  // 1001
  as.jne(dead);          // 1002: can never be taken fault-free
  as.hlt();              // 1003
  as.bind(dead);
  as.hlt();  // 1004
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  const std::uint32_t b_dead = cfg.block_at(1004);
  // Statically an edge exists (reachable), but the interval analysis
  // proves it infeasible and never delivers a state.
  EXPECT_TRUE(df.facts[b_dead].reachable);
  EXPECT_FALSE(df.facts[b_dead].in_valid);
}

TEST(DataflowTest, UnreachableBlockDetected) {
  Assembler as(1000);
  as.global("main");
  as.movi(Reg::rax, 1);  // 1000
  as.hlt();              // 1001
  as.nop();              // 1002: orphaned
  as.hlt();              // 1003
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  const std::uint32_t b = cfg.block_at(1002);
  ASSERT_NE(b, kNoBlock);
  EXPECT_FALSE(df.facts[b].reachable);
  EXPECT_FALSE(df.facts[b].in_valid);
  EXPECT_EQ(df.facts[b].idom, kNoBlock);
}

TEST(DataflowTest, DiamondDominators) {
  Assembler as(1000);
  const auto left = as.make_label();
  const auto merge = as.make_label();
  as.global("main");
  as.load(Reg::rax, Reg::rbx);  // 1000
  as.cmpi(Reg::rax, 0);         // 1001
  as.je(left);                  // 1002
  as.movi(Reg::rbx, 1);         // 1003
  as.jmp(merge);                // 1004
  as.bind(left);
  as.movi(Reg::rbx, 2);  // 1005
  as.bind(merge);
  as.hlt();  // 1006
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  const std::uint32_t b_head = cfg.block_at(1000);
  const std::uint32_t b_right = cfg.block_at(1003);
  const std::uint32_t b_left = cfg.block_at(1005);
  const std::uint32_t b_merge = cfg.block_at(1006);
  EXPECT_EQ(df.facts[b_head].idom, kNoBlock);  // root
  EXPECT_EQ(df.facts[b_right].idom, b_head);
  EXPECT_EQ(df.facts[b_left].idom, b_head);
  EXPECT_EQ(df.facts[b_merge].idom, b_head);
  // The merge point joins both arms' rbx values.
  EXPECT_EQ(df.in_state[b_merge][1], (Interval{1, 2}));
}

TEST(DataflowTest, LoopWideningTerminatesWithExitBound) {
  Assembler as(1000);
  as.global("main");
  as.movi(Reg::rax, 0);  // 1000
  const auto loop = as.here();
  as.inc(Reg::rax);        // 1001
  as.cmpi(Reg::rax, 100);  // 1002
  as.jl(loop);             // 1003
  as.hlt();                // 1004: rax >= 100 on exit
  const Program p = as.finish();
  const AnalysisArtifacts art = analyze_program(p);
  const std::uint32_t b_exit = art.cfg.block_at(1004);
  ASSERT_TRUE(art.facts[b_exit].in_valid);
  EXPECT_EQ(art.block_in[b_exit][0].lo, 100);
  const auto [lo, hi] = art.derived_at(1004);
  ASSERT_EQ(hi - lo, 1u);
  EXPECT_EQ(art.derived[lo].lo, 100);
}

TEST(DataflowTest, StackDepthBalancedFunctionIsQuiet) {
  Assembler as(1000);
  as.global("main");
  as.push(Reg::rbx);
  as.movi(Reg::rbx, 3);
  as.pop(Reg::rbx);
  as.ret();
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  EXPECT_TRUE(df.stack_warnings.empty());
}

TEST(DataflowTest, RetWithNonEmptyFrameWarns) {
  Assembler as(1000);
  as.global("main");
  as.push(Reg::rbx);
  as.ret();
  const Program p = as.finish();
  const DataflowResult df = run_dataflow(p, build_cfg(p));
  ASSERT_EQ(df.stack_warnings.size(), 1u);
  EXPECT_EQ(df.stack_warnings[0].addr, 1001u);
  EXPECT_EQ(df.stack_warnings[0].depth, 1);
  EXPECT_NE(df.stack_warnings[0].what.find("non-empty"), std::string::npos);
}

TEST(DataflowTest, PopBelowFrameWarns) {
  Assembler as(1000);
  as.global("main");
  as.pop(Reg::rbx);
  as.hlt();
  const Program p = as.finish();
  const DataflowResult df = run_dataflow(p, build_cfg(p));
  ASSERT_EQ(df.stack_warnings.size(), 1u);
  EXPECT_NE(df.stack_warnings[0].what.find("pop below"), std::string::npos);
}

TEST(DataflowTest, CallPreservesFrameDepthAcrossReturnSite) {
  Assembler as(1000);
  as.global("main");
  as.push(Reg::rbx);  // 1000
  as.call("leaf");    // 1001
  as.pop(Reg::rbx);   // 1002: frame still holds the push
  as.ret();           // 1003
  as.pad_ud(1);       // 1004
  as.global("leaf");
  as.ret();  // 1005
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  EXPECT_TRUE(df.stack_warnings.empty());
  const std::uint32_t b_site = cfg.block_at(1002);
  EXPECT_EQ(df.facts[b_site].stack_in, 1);
}

TEST(DataflowTest, EmptyProgramProducesNoFacts) {
  Assembler as(1000);
  const Program p = as.finish();
  const ControlFlowGraph cfg = build_cfg(p);
  const DataflowResult df = run_dataflow(p, cfg);
  EXPECT_TRUE(df.facts.empty());
  EXPECT_TRUE(df.stack_warnings.empty());
  const AnalysisArtifacts art = analyze_program(p);
  EXPECT_EQ(art.finding_count(), 0u);
  EXPECT_TRUE(art.derived.empty());
}

TEST(DataflowTest, DerivedAssertionCapRespected) {
  Assembler as(1000);
  as.global("main");
  for (int r = 0; r < 8; ++r) {
    as.movi(static_cast<Reg>(r), 100 + r);
  }
  as.hlt();
  const Program p = as.finish();
  AnalyzeOptions opt;
  opt.max_derived = 3;
  const AnalysisArtifacts art = analyze_program(p, opt);
  EXPECT_EQ(art.derived.size(), 3u);
}

}  // namespace
}  // namespace xentry::analysis
