#include "hv/exit_reason.hpp"

#include <string>

namespace xentry::hv {

int ExitReason::code() const {
  switch (category) {
    case ExitCategory::Hypercall: return index;
    case ExitCategory::Exception: return 100 + index;
    case ExitCategory::Apic: return 200 + index;
    case ExitCategory::Irq: return 300 + index;
    case ExitCategory::Softirq: return 400;
    case ExitCategory::Tasklet: return 401;
  }
  return -1;
}

std::string_view hypercall_name(Hypercall h) {
  constexpr std::array<std::string_view, kNumHypercalls> names = {
      "set_trap_table",
      "mmu_update",
      "set_gdt",
      "stack_switch",
      "set_callbacks",
      "fpu_taskswitch",
      "sched_op_compat",
      "platform_op",
      "set_debugreg",
      "get_debugreg",
      "update_descriptor",
      "memory_op",
      "multicall",
      "update_va_mapping",
      "set_timer_op",
      "event_channel_op_compat",
      "xen_version",
      "console_io",
      "physdev_op_compat",
      "grant_table_op",
      "vm_assist",
      "update_va_mapping_otherdomain",
      "iret",
      "vcpu_op",
      "set_segment_base",
      "mmuext_op",
      "xsm_op",
      "nmi_op",
      "sched_op",
      "callback_op",
      "xenoprof_op",
      "event_channel_op",
      "physdev_op",
      "hvm_op",
      "sysctl",
      "domctl",
      "kexec_op",
      "tmem_op",
  };
  return names[static_cast<std::size_t>(h)];
}

std::string_view exception_name(GuestException e) {
  constexpr std::array<std::string_view, kNumGuestExceptions> names = {
      "divide_error",
      "debug",
      "nmi",
      "int3",
      "overflow",
      "bounds",
      "invalid_op",
      "device_not_available",
      "double_fault",
      "coproc_seg_overrun",
      "invalid_tss",
      "segment_not_present",
      "stack_segment",
      "general_protection",
      "page_fault",
      "spurious_interrupt",
      "math_fault",
      "alignment_check",
      "machine_check",
  };
  return names[static_cast<std::size_t>(e)];
}

std::string_view apic_name(ApicInterrupt a) {
  constexpr std::array<std::string_view, kNumApicInterrupts> names = {
      "apic_timer",
      "apic_error",
      "apic_spurious",
      "apic_thermal",
      "apic_perf_counter",
      "apic_cmci",
      "ipi_event_check",
      "ipi_call_function",
      "ipi_reschedule",
      "ipi_irq_move",
  };
  return names[static_cast<std::size_t>(a)];
}

namespace {

// Handler symbols are interned so handler_symbol can return views.  Each
// category's symbols are built once.
const std::array<std::string, kNumHypercalls>& hypercall_symbols() {
  static const auto table = [] {
    std::array<std::string, kNumHypercalls> t;
    for (int i = 0; i < kNumHypercalls; ++i) {
      t[static_cast<std::size_t>(i)] =
          "hypercall_" +
          std::string(hypercall_name(static_cast<Hypercall>(i)));
    }
    return t;
  }();
  return table;
}

const std::array<std::string, kNumGuestExceptions>& exception_symbols() {
  static const auto table = [] {
    std::array<std::string, kNumGuestExceptions> t;
    for (int i = 0; i < kNumGuestExceptions; ++i) {
      t[static_cast<std::size_t>(i)] =
          "do_" + std::string(exception_name(static_cast<GuestException>(i)));
    }
    return t;
  }();
  return table;
}

}  // namespace

std::string_view handler_symbol(const ExitReason& reason) {
  switch (reason.category) {
    case ExitCategory::Hypercall:
      return hypercall_symbols()[static_cast<std::size_t>(reason.index)];
    case ExitCategory::Exception:
      return exception_symbols()[static_cast<std::size_t>(reason.index)];
    case ExitCategory::Apic:
      return apic_name(static_cast<ApicInterrupt>(reason.index));
    case ExitCategory::Irq:
      return "do_irq";
    case ExitCategory::Softirq:
      return "do_softirq";
    case ExitCategory::Tasklet:
      return "do_tasklet";
  }
  return "";
}

std::array<ExitReason, kNumHypercalls + kNumGuestExceptions +
                           kNumApicInterrupts + kNumIrqLines + 2>
all_exit_reasons() {
  std::array<ExitReason, kNumHypercalls + kNumGuestExceptions +
                             kNumApicInterrupts + kNumIrqLines + 2>
      out;
  std::size_t i = 0;
  for (int h = 0; h < kNumHypercalls; ++h) {
    out[i++] = ExitReason::hypercall(static_cast<Hypercall>(h));
  }
  for (int e = 0; e < kNumGuestExceptions; ++e) {
    out[i++] = ExitReason::exception(static_cast<GuestException>(e));
  }
  for (int a = 0; a < kNumApicInterrupts; ++a) {
    out[i++] = ExitReason::apic(static_cast<ApicInterrupt>(a));
  }
  for (int l = 0; l < kNumIrqLines; ++l) out[i++] = ExitReason::irq(l);
  out[i++] = ExitReason::softirq();
  out[i++] = ExitReason::tasklet();
  return out;
}

}  // namespace xentry::hv
