#include "ml/metrics.hpp"

#include <sstream>

namespace xentry::ml {

namespace {
double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double ConfusionMatrix::accuracy() const {
  return ratio(true_positive + true_negative, total());
}

double ConfusionMatrix::false_positive_rate() const {
  return ratio(false_positive, false_positive + true_negative);
}

double ConfusionMatrix::false_negative_rate() const {
  return ratio(false_negative, false_negative + true_positive);
}

double ConfusionMatrix::precision() const {
  return ratio(true_positive, true_positive + false_positive);
}

double ConfusionMatrix::recall() const {
  return ratio(true_positive, true_positive + false_negative);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "            pred:correct  pred:incorrect\n"
     << "  correct   " << true_negative << "  " << false_positive << "\n"
     << "  incorrect " << false_negative << "  " << true_positive << "\n"
     << "  accuracy=" << accuracy() * 100.0
     << "% fp_rate=" << false_positive_rate() * 100.0
     << "% fn_rate=" << false_negative_rate() * 100.0 << "%";
  return os.str();
}

ConfusionMatrix evaluate(
    const Dataset& data,
    const std::function<Label(std::span<const std::int64_t>)>& predict) {
  ConfusionMatrix m;
  for (std::size_t r = 0; r < data.size(); ++r) {
    const Label truth = data.label(r);
    const Label pred = predict(data.row(r));
    if (truth == Label::Incorrect) {
      if (pred == Label::Incorrect) ++m.true_positive;
      else ++m.false_negative;
    } else {
      if (pred == Label::Incorrect) ++m.false_positive;
      else ++m.true_negative;
    }
  }
  return m;
}

}  // namespace xentry::ml
