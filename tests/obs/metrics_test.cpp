#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

namespace xentry::obs {
namespace {

TEST(CounterTest, IncrementAndMerge) {
  Counter a, b;
  a.inc();
  a.inc(41);
  b.inc(8);
  EXPECT_EQ(a.value(), 42u);
  a.merge_from(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(GaugeTest, SetOverwritesAndMergeSums) {
  Gauge g, h;
  g.set(3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  h.set(10);
  g.merge_from(h);
  EXPECT_EQ(g.value(), 3);
}

TEST(Log2HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i - 1].
  Log2Histogram h;
  h.observe(0);
  EXPECT_EQ(h.bucket(0), 1u);
  h.observe(1);
  EXPECT_EQ(h.bucket(1), 1u);
  h.observe(2);
  h.observe(3);
  EXPECT_EQ(h.bucket(2), 2u);
  h.observe(4);
  h.observe(7);
  EXPECT_EQ(h.bucket(3), 2u);
  h.observe(8);
  EXPECT_EQ(h.bucket(4), 1u);
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.bucket(64), 1u);

  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());

  // The static bounds agree with where observe actually lands values.
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(0), 0u);
  for (int i = 1; i < Log2Histogram::kNumBuckets; ++i) {
    Log2Histogram probe;
    probe.observe(Log2Histogram::bucket_lower_bound(i));
    probe.observe(Log2Histogram::bucket_upper_bound(i));
    EXPECT_EQ(probe.bucket(i), 2u) << "bucket " << i;
  }
}

TEST(Log2HistogramTest, MergePreservesMomentsAndExtremes) {
  Log2Histogram a, b;
  a.observe(5);
  a.observe(100);
  b.observe(3);
  b.observe(70000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5u + 100u + 3u + 70000u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 70000u);
  // Merging an empty histogram must not clobber min/max.
  Log2Histogram empty;
  a.merge_from(empty);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 70000u);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  // Force rebalancing-ish churn; node-based storage keeps &c valid.
  for (int i = 0; i < 100; ++i) {
    reg.counter("name_" + std::to_string(i));
  }
  c.inc(7);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
  EXPECT_EQ(&reg.counter("a"), &c);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
}

std::string registry_json(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.write_json(os);
  return os.str();
}

/// The determinism contract: distributing one observation stream over K
/// shard registries and merging in shard order yields byte-identical
/// exports for any K.  Mirrors how run_campaign merges per-shard metrics.
TEST(MetricsRegistryTest, MergeDeterministicAcrossShardCounts) {
  // A synthetic observation stream with enough spread to hit many
  // buckets; derived deterministically from the index.
  struct Obs {
    std::uint64_t histogram_value;
    bool bump_counter;
  };
  std::vector<Obs> stream;
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    stream.push_back({x >> (x % 50), (x & 3) == 0});
  }

  std::string baseline;
  for (int shards : {1, 2, 7}) {
    std::vector<MetricsRegistry> regs(static_cast<std::size_t>(shards));
    for (std::size_t i = 0; i < stream.size(); ++i) {
      MetricsRegistry& reg = regs[i % static_cast<std::size_t>(shards)];
      reg.histogram("h").observe(stream[i].histogram_value);
      if (stream[i].bump_counter) reg.counter("c").inc();
      reg.gauge("g").set(1);  // per-shard contribution; merged = shard count
    }
    MetricsRegistry merged;
    for (const MetricsRegistry& reg : regs) merged.merge_from(reg);
    // Gauges sum across shards by design, so normalize before comparing.
    merged.gauge("g").set(1);
    const std::string json = registry_json(merged);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "shards=" << shards;
    }
  }
  EXPECT_NE(baseline.find("\"counters\""), std::string::npos);
  EXPECT_NE(baseline.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonIsSortedAndEscaped) {
  MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc(2);
  reg.counter("quote\"key").inc(3);
  const std::string json = registry_json(reg);
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
  EXPECT_NE(json.find("quote\\\"key"), std::string::npos);
}

TEST(MetricsRegistryTest, MergeAdoptsMetricsAbsentOnOneSide) {
  MetricsRegistry a, b;
  a.counter("only_a").inc(1);
  b.counter("only_b").inc(2);
  b.histogram("h").observe(9);
  a.merge_from(b);
  EXPECT_EQ(a.find_counter("only_a")->value(), 1u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 2u);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

}  // namespace
}  // namespace xentry::obs
