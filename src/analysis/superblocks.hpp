// Superblock formation over the analysis CFG, and the cached front door
// to threaded-code compilation.
//
// The CFG carves the image into basic blocks at every landing site and
// terminator; the threaded engine wants the *opposite* granularity —
// maximal fall-through runs — because its per-op accounting prefixes only
// work when no superblock boundary splits an edge control is guaranteed
// to cross.  form_superblocks therefore glues CFG blocks back together
// along guaranteed fall-through seams (plain landing-site splits,
// conditional-branch fall-through paths) and absorbs Ud padding runs into
// the preceding superblock when its last op can fall into them.
#pragma once

#include <memory>
#include <vector>

#include "analysis/artifacts.hpp"
#include "analysis/cfg.hpp"
#include "sim/jit/compiled_program.hpp"

namespace xentry::analysis {

/// Derives the threaded engine's superblock tiling from a CFG of
/// `program`.  Throws std::invalid_argument when the CFG does not
/// describe this program (stale base/size) — the same fail-fast shape as
/// every other artifact-staleness guard.
std::vector<sim::jit::Superblock> form_superblocks(
    const ControlFlowGraph& cfg, const sim::Program& program);

/// Compiles `artifacts.program` to threaded code through the process-wide
/// CodeCache, keyed by the artifacts' program signature: campaigns with
/// many shards compile once and share the immutable stream.
std::shared_ptr<const sim::jit::CompiledProgram> compile_threaded(
    const AnalysisArtifacts& artifacts);

}  // namespace xentry::analysis
