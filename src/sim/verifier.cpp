#include "sim/verifier.hpp"

#include <sstream>

namespace xentry::sim {

std::string_view issue_kind_name(VerifierIssue::Kind k) {
  switch (k) {
    case VerifierIssue::Kind::BranchOutOfRange: return "branch_out_of_range";
    case VerifierIssue::Kind::BranchIntoPadding: return "branch_into_padding";
    case VerifierIssue::Kind::FallthroughIntoPadding:
      return "fallthrough_into_padding";
    case VerifierIssue::Kind::UnknownAssertId: return "unknown_assert_id";
    case VerifierIssue::Kind::CallTargetNotSymbol:
      return "call_target_not_symbol";
  }
  return "?";
}

namespace {

bool is_direct_branch(Opcode op) {
  switch (op) {
    case Opcode::Jmp: case Opcode::Je: case Opcode::Jne: case Opcode::Jl:
    case Opcode::Jle: case Opcode::Jg: case Opcode::Jge: case Opcode::Jb:
    case Opcode::Jae: case Opcode::Call:
      return true;
    default:
      return false;
  }
}

/// True when control never falls through to the next slot.
bool is_terminal(Opcode op) {
  return op == Opcode::Jmp || op == Opcode::Ret || op == Opcode::Hlt ||
         op == Opcode::JmpR || op == Opcode::Ud;
}

}  // namespace

VerifierReport verify_program(const Program& program,
                              const VerifierOptions& options) {
  VerifierReport report;
  std::vector<bool> is_symbol_entry(program.size(), false);
  for (const auto& [name, addr] : program.symbols()) {
    if (program.contains(addr)) {
      is_symbol_entry[addr - program.base()] = true;
    }
  }

  for (Addr a = program.base(); a < program.end(); ++a) {
    const Instruction& insn = program.at(a);
    if (insn.op == Opcode::Ud) {
      ++report.padding;
      continue;
    }
    ++report.instructions;
    report.branches += is_branch(insn.op) ? 1 : 0;
    report.loads += is_mem_load(insn.op) ? 1 : 0;
    report.stores += is_mem_store(insn.op) ? 1 : 0;
    report.assertions += is_assertion(insn.op) ? 1 : 0;
    report.indirect_jumps += insn.op == Opcode::JmpR ? 1 : 0;

    if (is_direct_branch(insn.op)) {
      const auto target = static_cast<Addr>(insn.imm);
      if (!program.contains(target)) {
        report.issues.push_back({VerifierIssue::Kind::BranchOutOfRange, a,
                                 target, disassemble(insn)});
      } else if (program.at(target).op == Opcode::Ud) {
        report.issues.push_back({VerifierIssue::Kind::BranchIntoPadding, a,
                                 target, disassemble(insn)});
      } else if (insn.op == Opcode::Call &&
                 options.calls_must_hit_symbols &&
                 !is_symbol_entry[target - program.base()]) {
        report.issues.push_back({VerifierIssue::Kind::CallTargetNotSymbol, a,
                                 target, disassemble(insn)});
      }
    }

    if (is_assertion(insn.op) && options.max_assert_id != 0) {
      if (insn.aux == 0 || insn.aux >= options.max_assert_id) {
        report.issues.push_back({VerifierIssue::Kind::UnknownAssertId, a, 0,
                                 disassemble(insn)});
      }
    }

    // Falling through into padding means a function body forgot its
    // ret/jmp/hlt tail.
    const Addr next = a + 1;
    if (!is_terminal(insn.op) && program.contains(next) &&
        program.at(next).op == Opcode::Ud) {
      report.issues.push_back({VerifierIssue::Kind::FallthroughIntoPadding,
                               a, next, disassemble(insn)});
    }
  }
  return report;
}

std::string VerifierReport::to_string() const {
  std::ostringstream os;
  os << instructions << " instructions (" << padding << " padding), "
     << branches << " branches, " << loads << " loads, " << stores
     << " stores, " << assertions << " assertions, " << indirect_jumps
     << " indirect jumps; " << issues.size() << " issue(s)";
  for (const VerifierIssue& i : issues) {
    os << "\n  [" << issue_kind_name(i.kind) << "] at " << i.addr
       << " target " << i.target << ": " << i.detail;
  }
  return os.str();
}

}  // namespace xentry::sim
