
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/xentry_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/xentry_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/xentry_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/xentry_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/entropy.cpp" "src/ml/CMakeFiles/xentry_ml.dir/entropy.cpp.o" "gcc" "src/ml/CMakeFiles/xentry_ml.dir/entropy.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/xentry_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/xentry_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/xentry_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/xentry_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/rules.cpp" "src/ml/CMakeFiles/xentry_ml.dir/rules.cpp.o" "gcc" "src/ml/CMakeFiles/xentry_ml.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
