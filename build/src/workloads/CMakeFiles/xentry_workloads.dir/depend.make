# Empty dependencies file for xentry_workloads.
# This may be replaced when dependencies are built.
