// End-to-end integration: the full Xentry pipeline at small scale —
// train a model from one campaign, deploy it in another, and verify the
// paper's qualitative claims hold.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"
#include "fault/stats.hpp"
#include "fault/training.hpp"
#include "workloads/workload.hpp"
#include "xentry/cost_model.hpp"

namespace xentry {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fault::CampaignConfig train_cfg;
    train_cfg.injections = 8000;
    train_cfg.seed = 1001;
    train_cfg.collect_dataset = true;
    auto train_res = fault::run_campaign(train_cfg);
    detector_ = new fault::TrainedDetector(
        fault::train_detector(train_res.dataset));

    fault::CampaignConfig cfg;
    cfg.injections = 8000;
    cfg.seed = 2002;
    cfg.model = detector_->rules;
    result_ = new fault::CampaignResult(fault::run_campaign(cfg));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete result_;
    detector_ = nullptr;
    result_ = nullptr;
  }

  static fault::TrainedDetector* detector_;
  static fault::CampaignResult* result_;
};

fault::TrainedDetector* PipelineTest::detector_ = nullptr;
fault::CampaignResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, ClassifierAccuracyInPaperBand) {
  // Paper: RandomTree 98.6%, FP 0.7%.
  EXPECT_GT(detector_->test_eval.accuracy(), 0.95);
  EXPECT_LT(detector_->test_eval.false_positive_rate(), 0.02);
}

TEST_F(PipelineTest, OverallCoverageIsHigh) {
  // Paper Fig. 8: up to 99.4%, average 97.6%.
  auto cov = fault::coverage_breakdown(result_->records);
  EXPECT_GT(cov.manifested, 3000u);
  EXPECT_GT(cov.coverage(), 0.93);
}

TEST_F(PipelineTest, HardwareExceptionsDominateDetections) {
  // Paper: 85.1% of manifested errors detected by hardware exceptions.
  auto cov = fault::coverage_breakdown(result_->records);
  EXPECT_GT(cov.share(cov.hw_exception), 0.70);
  EXPECT_GT(cov.hw_exception, cov.sw_assertion + cov.vm_transition);
}

TEST_F(PipelineTest, AllThreeTechniquesContribute) {
  auto cov = fault::coverage_breakdown(result_->records);
  EXPECT_GT(cov.sw_assertion, 0u);
  EXPECT_GT(cov.vm_transition, 0u);
}

TEST_F(PipelineTest, TransitionDetectionFiresOnlyAtVmEntry) {
  // A VM-transition detection can only follow a completed hypervisor
  // execution: either a long-latency error, or a benign run falsely
  // flagged (the paper's 0.7% false-positive case).  Never a host-mode
  // crash or hang — runtime detection owns those.
  std::size_t vmt = 0, false_positives = 0;
  for (const auto& r : result_->records) {
    if (r.technique != Technique::VmTransition) continue;
    ++vmt;
    EXPECT_NE(r.consequence, fault::Consequence::HypervisorCrash);
    EXPECT_NE(r.consequence, fault::Consequence::HypervisorHang);
    if (r.consequence == fault::Consequence::Masked) ++false_positives;
  }
  ASSERT_GT(vmt, 0u);
  // False flags exist but stay a small minority of VMT verdicts.
  EXPECT_LT(false_positives, vmt / 2);
}

TEST_F(PipelineTest, DetectionLatenciesAreBounded) {
  // Paper Fig. 10: ~95% of transition detections within 700 instructions;
  // everything is caught before the guest resumes.
  auto by_tech = fault::latency_by_technique(result_->records);
  auto vmt = by_tech[Technique::VmTransition];
  ASSERT_FALSE(vmt.empty());
  EXPECT_LE(fault::latency_percentile(vmt, 95), 700u);
  // Runtime techniques have generally shorter latencies than transition
  // detection (they fire mid-handler, not at VM entry).
  auto hw = by_tech[Technique::HardwareException];
  ASSERT_FALSE(hw.empty());
  EXPECT_LT(fault::latency_percentile(hw, 50),
            fault::latency_percentile(vmt, 50) + 1);
}

TEST_F(PipelineTest, UndetectedResidueIsSmallAndClassified) {
  auto und = fault::undetected_breakdown(result_->records);
  auto cov = fault::coverage_breakdown(result_->records);
  EXPECT_LT(static_cast<double>(und.total) /
                static_cast<double>(cov.manifested),
            0.07);
  EXPECT_EQ(und.total, und.mis_classified + und.stack_values +
                           und.time_values + und.other_values);
}

TEST_F(PipelineTest, DetectorCostFitsTheOverheadBudget) {
  // The deployed rule set must be cheap: a few dozen integer comparisons
  // per VM entry at most.
  const int worst = detector_->rules.max_comparisons();
  EXPECT_GT(worst, 0);
  EXPECT_LT(worst, 64);
  CostParams p;
  ActivationCost c = activation_cost(p, 4, worst);
  // Even at the paper's peak 650K activations/s this stays ~10%.
  EXPECT_LT(overhead_fraction(p, 650000, c.with_transition_cycles), 0.12);
}

}  // namespace
}  // namespace xentry
