#include "fault/sampler.hpp"

#include "fault/experiment.hpp"

namespace xentry::fault {

namespace {

/// Rejection-redraw attempts before giving up and going analytic.  With
/// the default floor of 1/64 the expected attempt count is at most 64;
/// 512 failures at that mass has probability under 1e-3, and the analytic
/// fallback is still conservative (bias bounded by the slot's live mass,
/// itself near the floor when rejection struggles).
constexpr int kMaxRedraws = 512;

}  // namespace

ImportanceSampler::ImportanceSampler(const analysis::VulnerabilityMap& map,
                                     const sim::Program& program,
                                     double weight_floor,
                                     std::uint64_t aux_seed)
    : map_(map), program_(program), weight_floor_(weight_floor),
      aux_(aux_seed) {}

bool ImportanceSampler::is_live(const std::vector<sim::Addr>& trace,
                                const hv::Injection& inj) const {
  // Steps at or past the trace end never activate inside the watched
  // window; treat them as live (never skip what the map can't price).
  if (inj.at_step >= trace.size()) return true;
  return map_.is_live(trace[inj.at_step],
                      static_cast<std::uint8_t>(inj.reg),
                      static_cast<std::uint8_t>(inj.bit));
}

ImportanceSampler::Proposal ImportanceSampler::propose_uniform(
    std::mt19937_64& main_rng, std::uint64_t golden_steps,
    const std::vector<sim::Addr>& trace) {
  Proposal p;
  p.injection = InjectionExperiment::draw_injection(main_rng, golden_steps);
  if (trace.empty()) return p;  // nothing to price; execute as drawn

  // m = (1/T) * sum over the trace of the slot's live (reg, bit) count,
  // computed as an integer sum for exactness and determinism.
  constexpr std::uint64_t kPoints =
      static_cast<std::uint64_t>(sim::kNumArchRegs) * sim::kBitsPerReg;
  std::uint64_t live_sum = 0;
  for (const sim::Addr a : trace) {
    const sim::Addr off = a - map_.base;
    live_sum += off < map_.code_size ? map_.live_bits[off] : kPoints;
  }
  p.live_mass = static_cast<double>(live_sum) /
                (static_cast<double>(trace.size()) *
                 static_cast<double>(kPoints));

  if (p.live_mass < weight_floor_) {
    p.analytic = true;
    return p;
  }
  if (is_live(trace, p.injection)) return p;
  for (int i = 0; i < kMaxRedraws; ++i) {
    const hv::Injection cand =
        InjectionExperiment::draw_injection(aux_, golden_steps);
    if (is_live(trace, cand)) {
      p.injection = cand;
      return p;
    }
  }
  p.analytic = true;
  return p;
}

ImportanceSampler::Proposal ImportanceSampler::propose_activated(
    std::mt19937_64& main_rng, const std::vector<sim::Addr>& trace) {
  Proposal p;
  p.injection =
      InjectionExperiment::draw_activated_injection(main_rng, trace, program_);
  if (trace.empty()) return p;

  double frac_sum = 0.0;
  for (const sim::Addr a : trace) {
    const sim::Addr off = a - map_.base;
    frac_sum += off < map_.code_size ? map_.activated_live_frac[off] : 1.0;
  }
  p.live_mass = frac_sum / static_cast<double>(trace.size());

  if (p.live_mass < weight_floor_) {
    p.analytic = true;
    return p;
  }
  if (is_live(trace, p.injection)) return p;
  for (int i = 0; i < kMaxRedraws; ++i) {
    const hv::Injection cand =
        InjectionExperiment::draw_activated_injection(aux_, trace, program_);
    if (is_live(trace, cand)) {
      p.injection = cand;
      return p;
    }
  }
  p.analytic = true;
  return p;
}

}  // namespace xentry::fault
