#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace xentry::sim {
namespace {

TEST(MemoryTest, MappedReadWriteRoundTrips) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "data");
  ASSERT_FALSE(mem.write(0x1000, 42));
  Word v = 0;
  ASSERT_FALSE(mem.read(0x1000, v));
  EXPECT_EQ(v, 42u);
}

TEST(MemoryTest, UnmappedReadFaults) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "data");
  Word v = 0;
  Trap t = mem.read(0x0fff, v);
  EXPECT_EQ(t.kind, TrapKind::PageFault);
  EXPECT_EQ(t.fault_addr, 0x0fffu);
  t = mem.read(0x1040, v);
  EXPECT_EQ(t.kind, TrapKind::PageFault);
}

TEST(MemoryTest, UnmappedWriteFaults) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "data");
  EXPECT_EQ(mem.write(0x2000, 1).kind, TrapKind::PageFault);
}

TEST(MemoryTest, ReadOnlyWriteRaisesGeneralProtection) {
  Memory mem;
  mem.map(0x1000, 16, Perm::Read, "rodata");
  EXPECT_EQ(mem.write(0x1005, 9).kind, TrapKind::GeneralProtection);
  Word v = 1;
  EXPECT_FALSE(mem.read(0x1005, v));
  EXPECT_EQ(v, 0u);
}

TEST(MemoryTest, OverlappingMapThrows) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "a");
  EXPECT_THROW(mem.map(0x103f, 2, Perm::ReadWrite, "b"),
               std::invalid_argument);
  EXPECT_THROW(mem.map(0x0fff, 2, Perm::ReadWrite, "c"),
               std::invalid_argument);
  // Adjacent is fine.
  EXPECT_NO_THROW(mem.map(0x1040, 4, Perm::ReadWrite, "d"));
  EXPECT_NO_THROW(mem.map(0x0ffe, 2, Perm::ReadWrite, "e"));
}

TEST(MemoryTest, EmptyRegionThrows) {
  Memory mem;
  EXPECT_THROW(mem.map(0x1000, 0, Perm::ReadWrite, "z"),
               std::invalid_argument);
}

TEST(MemoryTest, RegionLookupAcrossSeveralRegions) {
  Memory mem;
  mem.map(0x100, 16, Perm::ReadWrite, "lo");
  mem.map(0x10000, 16, Perm::ReadWrite, "mid");
  mem.map(0x8000000000000000ull, 16, Perm::ReadWrite, "hi");
  EXPECT_TRUE(mem.is_mapped(0x100));
  EXPECT_TRUE(mem.is_mapped(0x1000f));
  EXPECT_TRUE(mem.is_mapped(0x800000000000000full));
  EXPECT_FALSE(mem.is_mapped(0x110));
  EXPECT_FALSE(mem.is_mapped(0xffff));
  EXPECT_EQ(mem.region_at(0x10008)->name, "mid");
}

TEST(MemoryTest, SnapshotRestoreRoundTrips) {
  Memory mem;
  mem.map(0x0, 8, Perm::ReadWrite, "a");
  mem.map(0x100, 8, Perm::ReadWrite, "b");
  mem.poke(0x3, 7);
  mem.poke(0x104, 9);
  auto snap = mem.snapshot();
  mem.poke(0x3, 100);
  mem.poke(0x104, 200);
  mem.restore(snap);
  EXPECT_EQ(mem.peek(0x3), 7u);
  EXPECT_EQ(mem.peek(0x104), 9u);
}

TEST(MemoryTest, IncrementalRestoreEquivalentToFullRestore) {
  // Arbitrary write pattern, restore, re-write, restore again: every
  // restore must reproduce the snapshot exactly even though only dirty
  // regions are copied back.
  Memory mem;
  mem.map(0x0, 16, Perm::ReadWrite, "a");
  mem.map(0x100, 16, Perm::ReadWrite, "b");
  mem.map(0x200, 16, Perm::ReadWrite, "c");
  for (int i = 0; i < 16; ++i) {
    mem.poke(0x0 + i, 10 + i);
    mem.poke(0x100 + i, 20 + i);
  }
  const Memory::Snapshot snap = mem.snapshot();

  // Touch only region "a"; "b"/"c" stay clean and may be skipped.
  ASSERT_FALSE(mem.write(0x3, 999));
  mem.restore(snap);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(mem.peek(0x0 + i), Word(10 + i));
    EXPECT_EQ(mem.peek(0x100 + i), Word(20 + i));
    EXPECT_EQ(mem.peek(0x200 + i), 0u);
  }

  // Re-write after the restore (including a previously clean region),
  // then restore again.
  mem.poke(0x3, 1234);
  mem.poke(0x105, 5678);
  mem.poke(0x20f, 42);
  mem.restore(snap);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(mem.peek(0x0 + i), Word(10 + i));
    EXPECT_EQ(mem.peek(0x100 + i), Word(20 + i));
    EXPECT_EQ(mem.peek(0x200 + i), 0u);
  }
}

TEST(MemoryTest, RestoreTracksSourceAcrossSnapshots) {
  // The campaign sync pattern: a faulty memory is repeatedly re-aligned
  // with successive snapshots of a golden memory while both mutate.
  Memory golden, faulty;
  golden.map(0x0, 8, Perm::ReadWrite, "r0");
  golden.map(0x100, 8, Perm::ReadWrite, "r1");
  faulty.map(0x0, 8, Perm::ReadWrite, "r0");
  faulty.map(0x100, 8, Perm::ReadWrite, "r1");

  Memory::Snapshot snap;
  for (int round = 0; round < 5; ++round) {
    golden.poke(0x1, 100 + round);             // r0 changes every round
    if (round == 2) golden.poke(0x101, 777);   // r1 changes once
    golden.snapshot_into(snap);
    if (round % 2 == 0) faulty.poke(0x102, 55);  // faulty diverges
    faulty.restore(snap);
    for (Addr a : {Addr{0x1}, Addr{0x101}, Addr{0x102}}) {
      EXPECT_EQ(faulty.peek(a), golden.peek(a)) << "round " << round;
    }
  }
}

TEST(MemoryTest, SnapshotIntoReusesBuffersAndSeesNewWrites) {
  Memory mem;
  mem.map(0x0, 8, Perm::ReadWrite, "a");
  mem.poke(0x2, 7);
  Memory::Snapshot snap;
  mem.snapshot_into(snap);
  const Word* buf = snap.regions[0].data.data();
  mem.poke(0x2, 9);
  mem.snapshot_into(snap);
  EXPECT_EQ(snap.regions[0].data[2], 9u);
  EXPECT_EQ(snap.regions[0].data.data(), buf);  // no reallocation
  EXPECT_EQ(snap, mem.snapshot());
}

TEST(MemoryTest, RestoreFromCopiedMemoryIsNotSkipped) {
  // Copies get a fresh identity: snapshots of a copy must not be
  // confused with snapshots of the original after the two diverge.
  Memory a;
  a.map(0x0, 4, Perm::ReadWrite, "r");
  a.poke(0x1, 5);
  Memory b = a;
  b.poke(0x1, 6);
  Memory target;
  target.map(0x0, 4, Perm::ReadWrite, "r");
  target.restore(a.snapshot());
  EXPECT_EQ(target.peek(0x1), 5u);
  target.restore(b.snapshot());
  EXPECT_EQ(target.peek(0x1), 6u);
  target.restore(a.snapshot());
  EXPECT_EQ(target.peek(0x1), 5u);
}

TEST(MemoryTest, ReadOnlyRegionSurvivesSnapshotRoundTrip) {
  Memory mem;
  mem.map(0x0, 4, Perm::ReadWrite, "rw");
  mem.map(0x100, 4, Perm::Read, "ro");
  const Memory::Snapshot snap = mem.snapshot();
  EXPECT_EQ(mem.write(0x101, 9).kind, TrapKind::GeneralProtection);
  mem.poke(0x1, 3);
  mem.restore(snap);
  EXPECT_EQ(mem.peek(0x101), 0u);
  EXPECT_EQ(mem.peek(0x1), 0u);
}

TEST(MemoryTest, ClearZeroesEverything) {
  Memory mem;
  mem.map(0x0, 8, Perm::ReadWrite, "a");
  mem.poke(0x1, 5);
  mem.clear();
  EXPECT_EQ(mem.peek(0x1), 0u);
}

TEST(MemoryTest, ClearCountsAsMutationForIncrementalRestore) {
  Memory mem;
  mem.map(0x0, 8, Perm::ReadWrite, "a");
  mem.poke(0x1, 5);
  const Memory::Snapshot snap = mem.snapshot();
  mem.restore(snap);  // establish sync, then mutate via clear()
  mem.clear();
  mem.restore(snap);
  EXPECT_EQ(mem.peek(0x1), 5u);
}

TEST(MemoryTest, BitFlippedPointerLandsOutsideRegions) {
  // The property the fault model relies on: flipping a high bit of a valid
  // pointer almost always leaves every mapped region.
  Memory mem;
  mem.map(0x10000, 1024, Perm::ReadWrite, "hv_data");
  const Addr ptr = 0x10010;
  int out_of_range = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (!mem.is_mapped(ptr ^ (Addr{1} << bit))) ++out_of_range;
  }
  EXPECT_GE(out_of_range, 50);
}

}  // namespace
}  // namespace xentry::sim
