// Fault-propagation forensics: lockstep divergence scan, taint sampling,
// evidence-based attribution, and the digest-invariance contract.
#include "fault/lockstep.hpp"

#include <gtest/gtest.h>

#include "fault/campaign.hpp"
#include "fault/outcome.hpp"
#include "sim/assembler.hpp"

namespace xentry::fault {
namespace {

TEST(ForensicsEnums, ConsequenceNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Consequence::AppSdc); ++i) {
    const auto c = static_cast<Consequence>(i);
    const auto back = consequence_from_name(consequence_name(c));
    ASSERT_TRUE(back.has_value()) << consequence_name(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(consequence_from_name("no_such_consequence").has_value());
  EXPECT_FALSE(consequence_from_name("").has_value());
}

TEST(ForensicsEnums, UndetectedClassNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(UndetectedClass::OtherValues); ++i) {
    const auto c = static_cast<UndetectedClass>(i);
    const auto back = undetected_class_from_name(undetected_class_name(c));
    ASSERT_TRUE(back.has_value()) << undetected_class_name(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(undetected_class_from_name("bogus").has_value());
}

TEST(ForensicsEnums, NeedsForensicsSelectsSdcCrashAndEscapes) {
  // SDC and app crash qualify regardless of detection; everything else
  // manifested qualifies only when it escaped; masked never does.
  EXPECT_TRUE(needs_forensics(Consequence::AppSdc, true));
  EXPECT_TRUE(needs_forensics(Consequence::AppSdc, false));
  EXPECT_TRUE(needs_forensics(Consequence::AppCrash, true));
  EXPECT_TRUE(needs_forensics(Consequence::AppCrash, false));
  EXPECT_TRUE(needs_forensics(Consequence::OneVmFailure, false));
  EXPECT_TRUE(needs_forensics(Consequence::HypervisorCrash, false));
  EXPECT_FALSE(needs_forensics(Consequence::OneVmFailure, true));
  EXPECT_FALSE(needs_forensics(Consequence::Masked, false));
  EXPECT_FALSE(needs_forensics(Consequence::Masked, true));
}

TEST(ForensicsEnums, EffectiveUndetectedPrefersForensicsAttribution) {
  InjectionRecord r;
  r.undetected = UndetectedClass::OtherValues;
  EXPECT_EQ(effective_undetected(r), UndetectedClass::OtherValues);
  obs::ForensicsRecord fx;
  fx.attributed = static_cast<std::uint8_t>(UndetectedClass::StackValues);
  r.forensics = fx;
  EXPECT_EQ(effective_undetected(r), UndetectedClass::StackValues);
  EXPECT_EQ(r.undetected, UndetectedClass::OtherValues);  // never rewritten
}

// -- divergence scan on hand-built programs ---------------------------------

constexpr sim::Addr kCodeBase = 0x400000;
constexpr sim::Addr kDataBase = 0x10000;
constexpr sim::Addr kStackTop = 0x20100;

/// Two CPUs over two identical memories and one shared program, reset to
/// the entry point — the raw lockstep-scan fixture.
struct Pair {
  sim::Program prog;
  sim::Memory gmem, fmem;
  sim::Cpu golden, faulty;

  explicit Pair(sim::Assembler& as)
      : prog(as.finish()), golden(&prog, &gmem), faulty(&prog, &fmem) {
    map(gmem);
    map(fmem);
    golden.reset(prog.base(), kStackTop);
    faulty.reset(prog.base(), kStackTop);
  }

  static void map(sim::Memory& m) {
    m.map(kDataBase, 256, sim::Perm::ReadWrite, "data");
    m.map(0x20000, 0x100, sim::Perm::ReadWrite, "stack");
  }
};

TEST(LockstepScan, BisectsToThePropagatingInstruction) {
  // step 0: movi rax, 5     (does not touch rbx — the flip stays latent)
  // step 1: mov  rcx, rbx   (propagates the corrupted rbx into rcx)
  // step 2: store [rdx+data], rcx
  // step 3: hlt
  sim::Assembler as(kCodeBase);
  as.movi(sim::Reg::rax, 5);
  as.mov(sim::Reg::rcx, sim::Reg::rbx);
  as.movi(sim::Reg::rdx, static_cast<std::int64_t>(kDataBase));
  as.store(sim::Reg::rdx, sim::Reg::rcx);
  as.hlt();
  Pair p(as);
  p.faulty.flip_bit(sim::Reg::rbx, 3);

  LockstepParams params;
  params.chunk_steps = 16;  // whole program in one chunk: bisection does
                            // the localization work
  const DivergenceScan scan = find_first_divergence(
      p.golden, p.faulty, sim::Reg::rbx, sim::Word{1} << 3, 0, params);

  ASSERT_TRUE(scan.diverged);
  EXPECT_FALSE(scan.masked);
  EXPECT_EQ(scan.divergence.step, 1u);  // the mov, not the movi before it
  EXPECT_EQ(scan.boundary, 2u);
  EXPECT_TRUE(scan.divergence.in_register);
  EXPECT_EQ(scan.divergence.location,
            static_cast<std::uint64_t>(sim::Reg::rcx));
  EXPECT_EQ(scan.divergence.xor_mask, sim::Word{1} << 3);
  EXPECT_EQ(scan.divergence.bit, 3);
}

TEST(LockstepScan, OverwrittenFlipIsMasked) {
  sim::Assembler as(kCodeBase);
  as.movi(sim::Reg::rax, 1);
  as.movi(sim::Reg::rbx, 7);  // overwrites the corrupted register
  as.hlt();
  Pair p(as);
  p.faulty.flip_bit(sim::Reg::rbx, 5);

  const DivergenceScan scan = find_first_divergence(
      p.golden, p.faulty, sim::Reg::rbx, sim::Word{1} << 5, 0);
  EXPECT_FALSE(scan.diverged);
  EXPECT_TRUE(scan.masked);
}

TEST(LockstepScan, LatentFlipNeverPropagatingIsNotMasked) {
  // The corrupted register is never read or written: the runs end with
  // the seed difference intact — neither diverged nor fully converged.
  sim::Assembler as(kCodeBase);
  as.movi(sim::Reg::rax, 2);
  as.addi(sim::Reg::rax, 3);
  as.hlt();
  Pair p(as);
  p.faulty.flip_bit(sim::Reg::r12, 9);

  const DivergenceScan scan = find_first_divergence(
      p.golden, p.faulty, sim::Reg::r12, sim::Word{1} << 9, 0);
  EXPECT_FALSE(scan.diverged);
  EXPECT_FALSE(scan.masked);
}

TEST(LockstepScan, MemoryDivergenceLocatedByAddress) {
  // rbx is a store *address* offset carrier: golden and faulty write the
  // same value to different addresses, so the first beyond-seed state is
  // in memory, not a register.
  sim::Assembler as(kCodeBase);
  as.movi(sim::Reg::rax, 0x55);
  as.store(sim::Reg::rbx, sim::Reg::rax);  // [rbx] = 0x55
  as.hlt();
  Pair p(as);
  p.golden.set_reg(sim::Reg::rbx, kDataBase);
  p.faulty.set_reg(sim::Reg::rbx, kDataBase);
  p.faulty.flip_bit(sim::Reg::rbx, 3);  // faulty stores at kDataBase + 8

  const DivergenceScan scan = find_first_divergence(
      p.golden, p.faulty, sim::Reg::rbx, sim::Word{1} << 3, 0);
  ASSERT_TRUE(scan.diverged);
  EXPECT_EQ(scan.divergence.step, 1u);
  EXPECT_FALSE(scan.divergence.in_register);
  EXPECT_EQ(scan.divergence.location, kDataBase);  // lowest differing word
  EXPECT_EQ(scan.divergence.xor_mask, 0x55u);
}

// -- campaign-level invariants ----------------------------------------------

CampaignConfig forensics_config(int injections) {
  CampaignConfig cfg;
  cfg.injections = injections;
  cfg.seed = 7;
  cfg.shards = 1;
  cfg.collect_dataset = true;  // satisfies the transition-detection check
  cfg.obs.metrics = true;
  cfg.obs.forensics = true;
  return cfg;
}

TEST(ForensicsCampaign, EverySdcHasDivergenceAndTaint) {
  // 2000 injections: the default configuration yields ~10 SDCs (SDC is
  // the rarest qualifying class — it needs consumed app-data corruption).
  auto res = run_campaign(forensics_config(2000));
  std::size_t sdc = 0, replayed = 0;
  for (const auto& r : res.records) {
    if (r.forensics.has_value()) ++replayed;
    if (r.consequence != Consequence::AppSdc) continue;
    ++sdc;
    ASSERT_TRUE(r.forensics.has_value());
    const obs::ForensicsRecord& fx = *r.forensics;
    // An SDC means persistent state really differed at run end, so the
    // replay must find the propagation and sample it at least once.
    EXPECT_TRUE(fx.diverged);
    ASSERT_GE(fx.taint.size(), 1u);
    EXPECT_EQ(fx.taint.front().step, fx.divergence.step + 1);
    EXPECT_GE(fx.divergence.step, r.injection.at_step);
  }
  ASSERT_GT(sdc, 0u) << "seed produced no SDC; grow the campaign";
  ASSERT_GT(replayed, sdc) << "escapes should also have been replayed";
  EXPECT_EQ(res.metrics.counter("forensics.replays").value(), replayed);
}

TEST(ForensicsCampaign, TaintSamplesAreMonotonicAndConsistent) {
  const auto res = run_campaign(forensics_config(400));
  std::size_t samples = 0;
  for (const auto& r : res.records) {
    if (!r.forensics.has_value() || !r.forensics->diverged) continue;
    const auto& taint = r.forensics->taint;
    for (std::size_t i = 0; i < taint.size(); ++i, ++samples) {
      if (i > 0) {
        EXPECT_GT(taint[i].step, taint[i - 1].step);
      }
      EXPECT_LE(taint[i].stack_words, taint[i].mem_words);
      EXPECT_LE(taint[i].persistent_words, taint[i].mem_words);
      EXPECT_LE(taint[i].time_words, taint[i].persistent_words);
    }
  }
  EXPECT_GT(samples, 0u);
}

TEST(ForensicsCampaign, AttributionAgreesWithTaintEvidence) {
  const auto res = run_campaign(forensics_config(400));
  std::size_t checked = 0;
  for (const auto& r : res.records) {
    if (!r.forensics.has_value()) continue;
    const obs::ForensicsRecord& fx = *r.forensics;
    const auto attributed = static_cast<UndetectedClass>(fx.attributed);
    EXPECT_LE(fx.attributed,
              static_cast<std::uint8_t>(UndetectedClass::OtherValues));
    EXPECT_EQ(fx.heuristic, static_cast<std::uint8_t>(r.undetected));
    EXPECT_EQ(fx.heuristic_agrees, attributed == r.undetected);
    if (r.detected) {
      EXPECT_EQ(attributed, UndetectedClass::NotApplicable);
      continue;
    }
    if (!fx.diverged || fx.taint.empty()) continue;  // heuristic fallback
    ++checked;
    const obs::TaintSample& last = fx.taint.back();
    if (attributed == UndetectedClass::TimeValues) {
      // Time attribution requires the end-state persistent corruption to
      // be exactly the time values.
      EXPECT_GT(last.persistent_words, 0u);
      EXPECT_EQ(last.time_words, last.persistent_words);
    }
    if (attributed == UndetectedClass::StackValues &&
        r.injection.reg != sim::Reg::rsp &&
        !(fx.divergence.in_register &&
          fx.divergence.location ==
              static_cast<std::uint64_t>(sim::Reg::rsp))) {
      bool stack_taint = !fx.divergence.in_register;
      for (const obs::TaintSample& s : fx.taint) {
        stack_taint |= s.stack_words > 0;
      }
      EXPECT_TRUE(stack_taint);
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ForensicsCampaign, DigestedFieldsIdenticalWithForensicsOnOrOff) {
  CampaignConfig off = forensics_config(300);
  off.obs.forensics = false;
  CampaignConfig on = forensics_config(300);
  const auto a = run_campaign(off);
  const auto b = run_campaign(on);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const InjectionRecord& x = a.records[i];
    const InjectionRecord& y = b.records[i];
    EXPECT_FALSE(x.forensics.has_value());
    // Every digested field, including the heuristic `undetected`.
    EXPECT_EQ(x.reason.code(), y.reason.code());
    EXPECT_EQ(x.activation_seed, y.activation_seed);
    EXPECT_EQ(x.injection.at_step, y.injection.at_step);
    EXPECT_EQ(x.injection.reg, y.injection.reg);
    EXPECT_EQ(x.injection.bit, y.injection.bit);
    EXPECT_EQ(x.injected, y.injected);
    EXPECT_EQ(x.activated, y.activated);
    EXPECT_EQ(x.consequence, y.consequence);
    EXPECT_EQ(x.detected, y.detected);
    EXPECT_EQ(x.technique, y.technique);
    EXPECT_EQ(x.latency, y.latency);
    EXPECT_EQ(x.trap, y.trap);
    EXPECT_EQ(x.assert_id, y.assert_id);
    EXPECT_EQ(x.trace_diverged, y.trace_diverged);
    EXPECT_EQ(x.undetected, y.undetected);
    EXPECT_EQ(x.features.as_array(), y.features.as_array());
  }
}

TEST(ForensicsCampaign, ValidateRejectsBadKnobs) {
  CampaignConfig cfg = forensics_config(10);
  cfg.obs.forensics_chunk_steps = 0;
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
  cfg = forensics_config(10);
  cfg.obs.forensics_max_replay_steps = 0;
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
  cfg = forensics_config(10);
  cfg.obs.forensics_sample_every = -1;
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::fault
