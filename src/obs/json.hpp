// Minimal JSON reader for the telemetry pipeline's own output.
//
// Everything the observability layer persists (metrics snapshots, the
// checkpoint journal, JSONL record streams) is JSON this repo wrote
// itself, and the streaming/resume machinery must read it back without
// external dependencies.  This parser covers exactly RFC-8259 value
// syntax (objects, arrays, strings with the escapes our writers emit,
// numbers, booleans, null) with two deliberate simplifications: numbers
// are held as both int64 and double (writers only emit integers, a few
// fixed-precision doubles, and %.17g round-trip doubles), and \uXXXX
// escapes outside the control range decode to '?' (our writers never
// emit them).  Parse failures return nullopt instead of throwing — a
// torn tail line of a killed process's journal is an expected input,
// not an error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xentry::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? int_ : fallback;
  }
  std::uint64_t as_uint(std::uint64_t fallback = 0) const {
    return is_number() ? uint_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? double_ : fallback;
  }
  const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? string_ : empty;
  }
  const std::vector<JsonValue>& as_array() const {
    static const std::vector<JsonValue> empty;
    return is_array() ? array_ : empty;
  }
  const std::map<std::string, JsonValue>& as_object() const {
    static const std::map<std::string, JsonValue> empty;
    return is_object() ? object_ : empty;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;

  /// Convenience: member value with typed fallback.
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  std::uint64_t get_uint(std::string_view key,
                         std::uint64_t fallback = 0) const;
  double get_double(std::string_view key, double fallback = 0.0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;
  const std::string& get_string(std::string_view key) const;

  // Construction (used by the parser; tests may build values directly).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(std::int64_t i);
  static JsonValue number_u(std::uint64_t u);
  static JsonValue number_d(double d);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> a);
  static JsonValue object(std::map<std::string, JsonValue> o);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON value from `text` (surrounding whitespace allowed).
/// Returns nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> parse_json(std::string_view text);

/// Parses one JSON value from the front of `text`, advancing `pos` past
/// it; trailing content is left unconsumed.  nullopt on syntax error.
std::optional<JsonValue> parse_json_prefix(std::string_view text,
                                           std::size_t& pos);

}  // namespace xentry::obs
