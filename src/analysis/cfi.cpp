#include "analysis/cfi.hpp"

namespace xentry::analysis {

namespace {

using sim::Addr;

bool edge_legal(const ControlFlowGraph& cfg, Addr a, Addr b) {
  const std::uint32_t ba = cfg.block_at(a);
  const std::uint32_t bb = cfg.block_at(b);
  if (ba == kNoBlock || bb == kNoBlock) return false;
  const BasicBlock& from = cfg.blocks[ba];
  if (a != from.last) return b == a + 1;  // sequential flow inside a block
  if (from.accept_any_succ) return true;  // unresolved indirect jump
  for (std::uint32_t s : from.succs) {
    if (cfg.blocks[s].first == b) return true;
  }
  return false;
}

}  // namespace

CfiResult check_trace(
    const AnalysisArtifacts& artifacts, const std::vector<Addr>& trace,
    Addr expected_entry, Addr hlt_addr,
    const std::array<sim::Word, sim::kNumArchRegs>* final_regs) {
  const ControlFlowGraph& cfg = artifacts.cfg;
  CfiResult r;
  auto wild = [&](std::size_t step, Addr from, Addr to) {
    r.kind = CfiResult::Kind::WildEdge;
    r.step = step;
    r.from = from;
    r.to = to;
    return r;
  };

  const Addr first = !trace.empty() ? trace[0]
                     : hlt_addr != kNoAddr ? hlt_addr
                                           : kNoAddr;
  if (expected_entry != kNoAddr && first != kNoAddr) {
    ++r.edges_checked;
    if (first != expected_entry || cfg.block_at(first) == kNoBlock) {
      r.kind = CfiResult::Kind::BadEntry;
      r.step = 0;
      r.from = expected_entry;
      r.to = first;
      return r;
    }
  }

  for (std::size_t i = 1; i < trace.size(); ++i) {
    ++r.edges_checked;
    if (!edge_legal(cfg, trace[i - 1], trace[i])) {
      return wild(i, trace[i - 1], trace[i]);
    }
  }
  if (hlt_addr != kNoAddr && !trace.empty()) {
    ++r.edges_checked;
    if (!edge_legal(cfg, trace.back(), hlt_addr)) {
      return wild(trace.size(), trace.back(), hlt_addr);
    }
  }

  if (hlt_addr != kNoAddr && final_regs != nullptr) {
    const auto [lo, hi] = artifacts.derived_at(hlt_addr);
    for (std::size_t i = lo; i < hi; ++i) {
      const DerivedAssertion& d = artifacts.derived[i];
      ++r.ranges_checked;
      const auto v = static_cast<std::int64_t>((*final_regs)[d.reg]);
      if (v < d.lo || v > d.hi) {
        r.kind = CfiResult::Kind::DerivedRange;
        r.step = trace.size();
        r.from = hlt_addr;
        r.to = hlt_addr;
        r.derived_id = d.id;
        r.reg = d.reg;
        r.value = v;
        r.lo = d.lo;
        r.hi = d.hi;
        return r;
      }
    }
  }
  return r;
}

}  // namespace xentry::analysis
