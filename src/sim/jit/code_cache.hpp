// Process-wide cache of threaded-code compilations, keyed by the FNV-1a
// program text signature (sim::program_text_signature).
//
// The shape follows the usual JIT code-cache idiom: compilation happens
// once per distinct program text, the artifact is immutable, and every
// consumer (campaign shards, benches, tests) shares it by shared_ptr.
// Thread-safe: campaign shards race to attach engines at startup.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/jit/compiled_program.hpp"

namespace xentry::sim::jit {

class CodeCache {
 public:
  /// The process-wide instance.
  static CodeCache& instance();

  /// The compilation cached under `signature`, or nullptr.
  std::shared_ptr<const CompiledProgram> find(std::uint64_t signature) const;

  /// Caches `compiled` under its own signature.  First insert wins; the
  /// resident entry is returned either way (identical text compiles to an
  /// identical stream, so dropping a racing duplicate is harmless).
  std::shared_ptr<const CompiledProgram> insert(
      std::shared_ptr<const CompiledProgram> compiled);

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompiledProgram>>
      entries_;
};

}  // namespace xentry::sim::jit
