// The hook bundle a Machine consumes.
//
// `hv::Machine` stays ignorant of campaign structure: it holds one
// `const MachineTelemetry*` (default nullptr — a single predictable
// branch per VM exit when observability is off) and feeds whichever
// sinks are non-null.  The campaign builds one bundle per machine per
// shard, pointing into shard-local recorders, so the hot path stays
// lock-free.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xentry::obs {

struct MachineTelemetry {
  /// Per-VM-exit spans (named by handler symbol).  Null: no tracing.
  TraceRecorder* trace = nullptr;
  /// Chrome lane for this machine's spans (campaign shard index).
  std::int32_t tid = 0;
  /// VM-exit ring for SDC postmortems.  Null: no flight recording.
  FlightRecorder* flight = nullptr;
  /// FlightFrame::source tag (campaign: 0 golden machine, 1 faulty).
  std::uint8_t flight_source = 0;
  /// Wall-clock nanoseconds per snapshot_into / restore call.  Null: no
  /// timing.
  Log2Histogram* snapshot_ns = nullptr;
  Log2Histogram* restore_ns = nullptr;
};

}  // namespace xentry::obs
