# Empty compiler generated dependencies file for table2_undetected.
# This may be replaced when dependencies are built.
