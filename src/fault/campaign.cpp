#include "fault/campaign.hpp"

#include "analysis/superblocks.hpp"
#include "fault/checkpoint.hpp"
#include "fault/record_io.hpp"
#include "fault/sampler.hpp"
#include "obs/fleet_view.hpp"
#include "obs/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

namespace xentry::fault {

wl::WorkloadProfile uniform_sweep_profile() {
  wl::WorkloadProfile p;
  for (const hv::ExitReason& r : hv::all_exit_reasons()) {
    p.mix.emplace_back(r, 1.0);
  }
  return p;
}

void validate_campaign_config(const CampaignConfig& cfg) {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("CampaignConfig: " + msg);
  };
  if (cfg.injections < 0) {
    fail("injections must be >= 0, got " + std::to_string(cfg.injections));
  }
  // Negated comparison so NaN fails too.
  if (!(cfg.activation_bias >= 0.0 && cfg.activation_bias <= 1.0)) {
    fail("activation_bias must be within [0, 1], got " +
         std::to_string(cfg.activation_bias));
  }
  if (cfg.warmup_activations < 0) {
    fail("warmup_activations must be >= 0, got " +
         std::to_string(cfg.warmup_activations));
  }
  if (cfg.stream_gap < 0) {
    fail("stream_gap must be >= 0, got " + std::to_string(cfg.stream_gap));
  }
  if (cfg.shards < 0) {
    fail("shards must be >= 0 (0 = hardware concurrency), got " +
         std::to_string(cfg.shards));
  }
  if (cfg.fleet.unit_count < 0) {
    fail("fleet.unit_count must be >= 0 (0 = not a fleet worker), got " +
         std::to_string(cfg.fleet.unit_count));
  }
  if (cfg.fleet.unit_count > 0) {
    if (cfg.streaming.records_path.empty()) {
      fail("fleet.unit_count is set without streaming.records_path — fleet "
           "work units only exist as durable shard streams; point "
           "records_path at the shared campaign directory");
    }
    if (cfg.injections > 0 && cfg.fleet.unit_count > cfg.injections) {
      fail("fleet.unit_count " + std::to_string(cfg.fleet.unit_count) +
           " exceeds injections " + std::to_string(cfg.injections) +
           " — the equivalent single-process campaign clamps shards to "
           "injections, so the partitions could never match");
    }
    if (cfg.fleet.units.empty()) {
      fail("fleet.unit_count is set but fleet.units is empty — this process "
           "would own no work units");
    }
    std::vector<bool> seen(static_cast<std::size_t>(cfg.fleet.unit_count));
    for (int u : cfg.fleet.units) {
      if (u < 0 || u >= cfg.fleet.unit_count) {
        fail("fleet.units entry " + std::to_string(u) +
             " is outside [0, unit_count=" +
             std::to_string(cfg.fleet.unit_count) + ")");
      }
      if (seen[static_cast<std::size_t>(u)]) {
        fail("fleet.units contains unit " + std::to_string(u) +
             " twice — a unit's stream would be written by two shards");
      }
      seen[static_cast<std::size_t>(u)] = true;
    }
  } else if (!cfg.fleet.units.empty()) {
    fail("fleet.units is set without fleet.unit_count — set unit_count to "
         "the fleet-wide size of the unit space");
  }
  if (cfg.obs.flight_recorder && cfg.obs.flight_recorder_depth <= 0) {
    fail("obs.flight_recorder enabled with non-positive "
         "flight_recorder_depth " +
         std::to_string(cfg.obs.flight_recorder_depth));
  }
  if (cfg.obs.tracing && cfg.obs.trace_max_events == 0) {
    fail("obs.tracing enabled with trace_max_events == 0 (every event "
         "would be dropped)");
  }
  if (cfg.obs.forensics) {
    if (cfg.obs.forensics_chunk_steps <= 0) {
      fail("obs.forensics enabled with non-positive forensics_chunk_steps " +
           std::to_string(cfg.obs.forensics_chunk_steps));
    }
    if (cfg.obs.forensics_max_replay_steps == 0) {
      fail("obs.forensics enabled with forensics_max_replay_steps == 0 (no "
           "replay window)");
    }
    if (cfg.obs.forensics_max_taint_samples <= 0) {
      fail("obs.forensics enabled with non-positive "
           "forensics_max_taint_samples " +
           std::to_string(cfg.obs.forensics_max_taint_samples));
    }
    if (cfg.obs.forensics_sample_every <= 0) {
      fail("obs.forensics enabled with non-positive forensics_sample_every " +
           std::to_string(cfg.obs.forensics_sample_every));
    }
  }
  if (cfg.heartbeat.interval_sec > 0 && !cfg.heartbeat.callback) {
    fail("heartbeat.interval_sec is set but no heartbeat.callback is "
         "installed");
  }
  if (!(cfg.heartbeat.interval_sec >= 0) ||
      std::isinf(cfg.heartbeat.interval_sec)) {
    fail("heartbeat.interval_sec must be finite and >= 0");
  }
  if (!(cfg.heartbeat.straggler_fraction >= 0.0 &&
        cfg.heartbeat.straggler_fraction < 1.0)) {
    fail("heartbeat.straggler_fraction must be within [0, 1), got " +
         std::to_string(cfg.heartbeat.straggler_fraction));
  }
  if (cfg.xentry.transition_detection && cfg.model.empty() &&
      !cfg.collect_dataset) {
    fail("transition detection is enabled but no model is installed and no "
         "dataset is being collected — it can never fire; install "
         "cfg.model, set collect_dataset=true (the training "
         "configuration), or disable xentry.transition_detection");
  }
  if (cfg.xentry.control_flow_detection && cfg.analysis == nullptr) {
    fail("control-flow detection is enabled but no analysis artifacts are "
         "installed — it can never fire; set cfg.analysis to "
         "analyze_program(...) output or disable "
         "xentry.control_flow_detection");
  }
  if (cfg.xentry.timing_detection) {
    if (cfg.analysis == nullptr) {
      fail("timing detection is enabled but no analysis artifacts are "
           "installed — it can never fire; set cfg.analysis to "
           "analyze_program(...) output or disable "
           "xentry.timing_detection");
    }
    if (cfg.analysis->timing.valid_count() == 0) {
      fail("timing detection is enabled but the analysis artifacts carry "
           "no finite timing envelopes — re-run analyze_program with "
           "AnalyzeOptions::timing_envelopes enabled");
    }
  }
  if (cfg.sampling.importance) {
    if (!(cfg.sampling.weight_floor > 0.0 &&
          cfg.sampling.weight_floor <= 1.0)) {
      fail("sampling.weight_floor must be within (0, 1], got " +
           std::to_string(cfg.sampling.weight_floor));
    }
    if (cfg.analysis == nullptr) {
      fail("sampling.importance is enabled but no analysis artifacts are "
           "installed — the sampler needs the bit-liveness vulnerability "
           "map; set cfg.analysis to analyze_program(...) output");
    }
    if (cfg.analysis->vuln.empty()) {
      fail("sampling.importance is enabled but the analysis artifacts "
           "carry no vulnerability map — re-run analyze_program with "
           "AnalyzeOptions::bit_liveness enabled");
    }
  }
  if (cfg.xentry.engine == sim::EngineKind::Jit && cfg.analysis == nullptr) {
    fail("xentry.engine is Jit but no analysis artifacts are installed — "
         "threaded-code compilation needs the CFG; set cfg.analysis to "
         "analyze_program(...) output or select another engine");
  }
  const CampaignConfig::StreamingConfig& st = cfg.streaming;
  if (!st.records_path.empty() && st.sink_buffer_bytes == 0) {
    fail("streaming.records_path is set with sink_buffer_bytes == 0 (every "
         "append would be dropped)");
  }
  if (!st.keep_records && st.records_path.empty()) {
    fail("streaming.keep_records is false but no records_path is set — the "
         "records would be lost entirely; point records_path at a sink");
  }
  if (st.abort_after < 0) {
    fail("streaming.abort_after must be >= 0, got " +
         std::to_string(st.abort_after));
  }
  if (!st.checkpoint_path.empty()) {
    if (st.records_path.empty()) {
      fail("streaming.checkpoint_path is set without records_path — a "
           "resumed campaign cannot reconstruct pre-kill records without a "
           "durable record sink");
    }
    if (st.checkpoint_every <= 0) {
      fail("streaming.checkpoint_every must be > 0, got " +
           std::to_string(st.checkpoint_every));
    }
    if (cfg.collect_dataset) {
      fail("collect_dataset cannot be combined with checkpointing — the "
           "dataset accumulator is not journaled, so a resumed run would "
           "silently miss pre-kill rows; collect the dataset in a "
           "non-checkpointed campaign");
    }
  }
}

namespace {

using Clock = std::chrono::steady_clock;

/// Per-shard progress cells for the heartbeat, padded to a cache line so
/// shards never share one.  Relaxed increments: the monitor reads a
/// point-in-time aggregate, not a synchronized snapshot.
struct alignas(64) ShardProgress {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> detected[kNumTechniques]{};
  /// Records durable at the shard's last checkpoint.
  std::atomic<std::uint64_t> checkpointed{0};
  /// Record-sink bytes buffered but not yet flushed (sink flush lag).
  std::atomic<std::uint64_t> sink_lag{0};
  /// Record-sink frames dropped (mirror of the shard's sink stats — the
  /// stats struct itself is single-writer and unsafe for the monitor).
  std::atomic<std::uint64_t> dropped{0};
};

/// Campaign-level metric handles, resolved once per shard.
struct CampaignMetricHandles {
  obs::Counter* injections = nullptr;  // liveness gate
  obs::Counter* activated = nullptr;
  obs::Counter* manifested = nullptr;
  obs::Counter* detected = nullptr;
  obs::Counter* golden_steps = nullptr;
  obs::Counter* blackbox_dumps = nullptr;
  /// Importance sampling only: slots resolved without a faulted run.
  obs::Counter* analytic_slots = nullptr;
  // Forensics (null unless obs.forensics && obs.metrics).
  obs::Counter* forensics_replays = nullptr;
  obs::Counter* forensics_replay_steps = nullptr;
  obs::Counter* forensics_mismatch = nullptr;
  /// Indexed by UndetectedClass ordinal; NotApplicable (0) stays null.
  std::array<obs::Counter*, 5> forensics_class{};
  obs::Log2Histogram* forensics_latency = nullptr;
  obs::Log2Histogram* forensics_taint = nullptr;
};

/// Streaming plumbing for one shard: the shared sink (per-shard streams
/// inside), the shared journal, and this shard's latest checkpoint
/// (null on a fresh start).
struct ShardStreaming {
  obs::RecordSink* sink = nullptr;
  CheckpointJournal* journal = nullptr;
  const ShardCheckpoint* resume = nullptr;
};

/// One shard's work: its own machines, generator, RNG, and telemetry.
/// The workload profile is resolved once in run_campaign and shared
/// read-only; `progress` is null unless the heartbeat is enabled.
CampaignResult run_shard(
    const CampaignConfig& cfg, const wl::WorkloadProfile& profile,
    int shard_index, int num_shards,
    obs::TraceRecorder::Clock::time_point epoch,
    const std::shared_ptr<const sim::jit::CompiledProgram>& compiled,
    ShardProgress* progress, const ShardStreaming& streaming) {
  const int base = cfg.injections / num_shards;
  const int extra = shard_index < cfg.injections % num_shards ? 1 : 0;
  const int quota = base + extra;

  CampaignResult result;
  if (quota == 0) return result;
  if (cfg.streaming.keep_records) {
    result.records.reserve(static_cast<std::size_t>(quota));
  }
  const ShardCheckpoint* const resume = streaming.resume;

  // -- metrics sidecar (snapshot stream) -------------------------------------
  // The restored registry must be in place before anything below resolves
  // handles into result.metrics: restoring replaces the registry object.
  const obs::Options& oo = cfg.obs;
  std::ofstream snap_stream;
  std::unique_ptr<obs::SnapshotWriter> snap_writer;
  if (streaming.journal != nullptr && oo.metrics) {
    const std::string spath =
        snapshot_sidecar_path(cfg.streaming.checkpoint_path, shard_index);
    if (resume != nullptr) {
      {
        std::ifstream in(spath, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (text.size() > resume->snap_offset) {
          text.resize(static_cast<std::size_t>(resume->snap_offset));
        }
        result.metrics = obs::merge_snapshots(obs::read_snapshots(text));
      }
      // Drop snapshot lines written after the journaled commit point (a
      // kill can land between the snapshot write and the journal append).
      std::error_code ec;
      std::filesystem::resize_file(spath, resume->snap_offset, ec);
      snap_stream.open(spath, std::ios::binary | std::ios::app);
      snap_writer = std::make_unique<obs::SnapshotWriter>(snap_stream);
      snap_writer->prime(result.metrics, resume->snap_count);
    } else {
      snap_stream.open(spath, std::ios::binary | std::ios::trunc);
      snap_writer = std::make_unique<obs::SnapshotWriter>(snap_stream);
    }
    if (!snap_stream.is_open()) {
      throw std::runtime_error("campaign: cannot open metrics sidecar " +
                               spath);
    }
  }

  hv::Machine golden(cfg.machine);
  hv::Machine faulty(cfg.machine);
  if (cfg.xentry.engine != sim::EngineKind::Fast) {
    // Both machines run the selected engine: the golden probe and the
    // faulty run must retire identical streams for the diff to mean
    // anything, and the compiled stream is immutable so sharing the one
    // shared_ptr across shards is free.
    golden.set_execution_engine(cfg.xentry.engine, compiled);
    faulty.set_execution_engine(cfg.xentry.engine, compiled);
  }
  // Rewind the golden machine to the checkpointed image before telemetry
  // attaches (the faulty machine realigns from the golden probe every
  // injection, so only golden state is journaled).
  if (resume != nullptr) restore_machine(golden, *resume);

  // -- shard-local telemetry (lock-free: nothing here is shared) ------------
  result.trace = obs::TraceRecorder(oo.trace_max_events, epoch);
  obs::TraceRecorder* const tr = oo.tracing ? &result.trace : nullptr;
  const std::int32_t tid = shard_index;
  obs::FlightRecorder flight(oo.flight_recorder_depth);
  // Telemetry placement follows the cost structure: the FAULTY machine
  // runs exactly once per injection (the interesting run — behavior under
  // fault), so it carries the per-VM-exit span and the flight-recorder
  // ring.  The GOLDEN machine runs ~4x as often (probe + advances), so it
  // carries only the passive snapshot/restore histograms; its probe run
  // is timed by the enclosing phase:golden_probe span instead.
  obs::MachineTelemetry golden_hooks, faulty_hooks;
  if (oo.tracing) {
    faulty_hooks.trace = &result.trace;
    faulty_hooks.tid = tid;
  }
  if (oo.flight_recorder) {
    faulty_hooks.flight = &flight;
    faulty_hooks.flight_source = 1;
  }
  if (oo.metrics) {
    obs::Log2Histogram* snap = &result.metrics.histogram("machine.snapshot_ns");
    obs::Log2Histogram* rest = &result.metrics.histogram("machine.restore_ns");
    golden_hooks.snapshot_ns = faulty_hooks.snapshot_ns = snap;
    golden_hooks.restore_ns = faulty_hooks.restore_ns = rest;
  }
  if (oo.metrics) golden.set_telemetry(&golden_hooks);
  if (oo.any()) faulty.set_telemetry(&faulty_hooks);
  CampaignMetricHandles cm;
  if (oo.metrics) {
    cm.injections = &result.metrics.counter("campaign.injections");
    cm.activated = &result.metrics.counter("campaign.activated");
    cm.manifested = &result.metrics.counter("campaign.manifested");
    cm.detected = &result.metrics.counter("campaign.detected");
    cm.golden_steps = &result.metrics.counter("campaign.golden_steps");
    cm.blackbox_dumps = &result.metrics.counter("campaign.blackbox_dumps");
    if (cfg.sampling.importance) {
      cm.analytic_slots = &result.metrics.counter("campaign.analytic_slots");
    }
    if (oo.forensics) {
      cm.forensics_replays = &result.metrics.counter("forensics.replays");
      cm.forensics_replay_steps =
          &result.metrics.counter("forensics.replay_steps");
      cm.forensics_mismatch =
          &result.metrics.counter("forensics.heuristic_mismatch");
      for (int c = 1; c < 5; ++c) {
        cm.forensics_class[static_cast<std::size_t>(c)] =
            &result.metrics.counter(
                "forensics.class." +
                std::string(undetected_class_name(
                    static_cast<UndetectedClass>(c))));
      }
      cm.forensics_latency =
          &result.metrics.histogram("forensics.first_divergence_latency");
      cm.forensics_taint = &result.metrics.histogram("forensics.taint_words");
    }
  }

  XentryConfig xcfg = cfg.xentry;
  if (oo.metrics) xcfg.obs.metrics = true;
  Xentry xentry(xcfg);
  if (!cfg.model.empty()) xentry.set_model(cfg.model);
  if (cfg.analysis != nullptr) xentry.set_analysis(cfg.analysis.get());
  if (oo.metrics) xentry.set_metrics(&result.metrics);
  InjectionExperiment experiment(golden, faulty, xentry, cfg.outcome);
  if (oo.flight_recorder) experiment.set_flight_recorder(&flight);
  if (oo.forensics) {
    InjectionExperiment::ForensicsConfig fc;
    fc.enabled = true;
    fc.params.chunk_steps = oo.forensics_chunk_steps;
    fc.params.max_replay_steps = oo.forensics_max_replay_steps;
    fc.params.max_taint_samples = oo.forensics_max_taint_samples;
    fc.sample_every = oo.forensics_sample_every;
    experiment.set_forensics(fc);
  }

  const std::uint64_t shard_seed =
      cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(shard_index);
  wl::WorkloadGenerator gen(golden, profile, shard_seed);
  std::mt19937_64 rng(shard_seed ^ 0xc2b2ae3d27d4eb4full);

  // Importance sampling: the redraw stream is per shard and disjoint from
  // the main stream, so skipping masked candidates never perturbs the
  // activation/probe sequence of the slots that do execute.
  std::unique_ptr<ImportanceSampler> sampler;
  if (cfg.sampling.importance) {
    sampler = std::make_unique<ImportanceSampler>(
        cfg.analysis->vuln, golden.microvisor().program,
        cfg.sampling.weight_floor, shard_seed ^ 0x94d049bb133111ebull);
  }

  if (resume != nullptr) {
    // Rewind every RNG cursor to the journaled state; the textual
    // mt19937_64 encoding is engine-exact, so the draw sequences continue
    // bit-identically from the checkpoint boundary.
    if (!rng_state_from_string(gen.rng(), resume->gen_rng) ||
        !rng_state_from_string(rng, resume->main_rng) ||
        (sampler != nullptr &&
         !rng_state_from_string(sampler->aux(), resume->aux_rng))) {
      throw std::runtime_error(
          "campaign: checkpoint RNG state failed to parse (journal written "
          "by an incompatible build?)");
    }
    gen.set_activations_generated(resume->activations_generated);
    experiment.set_forensics_counter(resume->forensics_counter);
  } else {
    obs::TraceRecorder::Span warm(tr, "phase:warmup", tid);
    for (int i = 0; i < cfg.warmup_activations; ++i) {
      experiment.advance(gen.next());
    }
  }

  // -- streaming state -------------------------------------------------------
  obs::RecordSink* const sink = streaming.sink;
  const obs::RecordFormat fmt = cfg.streaming.records_format;
  std::uint64_t records_written =
      resume != nullptr ? resume->records_written : 0;
  std::uint64_t digest = resume != nullptr ? resume->digest : kDigestBasis;
  double effective = resume != nullptr ? resume->effective : 0.0;
  std::string frame;               // encode buffer, reused per record
  obs::SinkShardStats mirrored{};  // sink stats already mirrored to counters
  const auto mirror_sink_stats = [&] {
    if (sink == nullptr || !oo.metrics) return;
    const obs::SinkShardStats& now = sink->stats(shard_index);
    result.metrics.counter("obs.sink.appends").inc(now.appends -
                                                   mirrored.appends);
    result.metrics.counter("obs.sink.appended_bytes")
        .inc(now.appended_bytes - mirrored.appended_bytes);
    result.metrics.counter("obs.sink.flushes").inc(now.flushes -
                                                   mirrored.flushes);
    result.metrics.counter("obs.sink.flushed_bytes")
        .inc(now.flushed_bytes - mirrored.flushed_bytes);
    result.metrics.counter("obs.sink.backpressure_flushes")
        .inc(now.backpressure_flushes - mirrored.backpressure_flushes);
    result.metrics.counter("obs.sink.dropped").inc(now.dropped -
                                                   mirrored.dropped);
    mirrored = now;
  };
  const auto write_checkpoint = [&](std::uint64_t iterations_done) {
    // Commit order is what makes a kill at any instant recoverable:
    // durable records first, then the metrics snapshot, then the journal
    // line naming both offsets.  A kill between any two steps leaves a
    // tail beyond the last journaled offset, which resume truncates.
    if (sink != nullptr) sink->flush(shard_index);
    mirror_sink_stats();
    ShardCheckpoint ck;
    ck.shard = shard_index;
    ck.iterations = iterations_done;
    ck.records_written = records_written;
    ck.digest = digest;
    ck.effective = effective;
    ck.sink_offset = sink != nullptr ? sink->offset(shard_index) : 0;
    if (snap_writer != nullptr) {
      snap_writer->write(result.metrics);
      ck.snap_offset = static_cast<std::uint64_t>(snap_stream.tellp());
      ck.snap_count = snap_writer->next_seq();
    }
    ck.forensics_counter = experiment.forensics_counter();
    ck.activations_generated = gen.activations_generated();
    ck.gen_rng = rng_state_string(gen.rng());
    ck.main_rng = rng_state_string(rng);
    if (sampler != nullptr) ck.aux_rng = rng_state_string(sampler->aux());
    capture_machine(golden, ck);
    streaming.journal->append(ck);
    if (progress != nullptr) {
      progress->checkpointed.store(records_written,
                                   std::memory_order_relaxed);
      progress->sink_lag.store(0, std::memory_order_relaxed);
    }
  };
  if (resume != nullptr && progress != nullptr) {
    progress->completed.store(records_written, std::memory_order_relaxed);
    progress->checkpointed.store(records_written, std::memory_order_relaxed);
  }

  std::bernoulli_distribution biased(cfg.activation_bias);
  InjectionExperiment::GoldenProbe probe;  // buffers reused every injection
  const int start_iter =
      resume != nullptr ? static_cast<int>(resume->iterations) : 0;
  for (int i = start_iter; i < quota; ++i) {
    const hv::Activation act = gen.next();
    // The probe run doubles as the experiment's golden run: the golden
    // machine advances to its post-run state here and run_one only has to
    // execute the faulted machine.
    {
      obs::TraceRecorder::Span span(tr, "phase:golden_probe", tid);
      experiment.probe_golden_advance(act, probe);
    }
    if (probe.steps == 0) {
      // Degenerate activation: rewind and skip the injection.  No record
      // exists and no further draws are consumed, but the checkpoint /
      // abort bookkeeping below still runs — iteration counts include
      // degenerate slots, so resume boundaries stay well-defined.
      golden.restore(probe.pre);
    } else {
      ImportanceSampler::Proposal prop;
      if (sampler != nullptr) {
        prop = biased(rng) ? sampler->propose_activated(rng, probe.trace)
                           : sampler->propose_uniform(rng, probe.steps,
                                                      probe.trace);
      } else {
        prop.injection =
            biased(rng)
                ? InjectionExperiment::draw_activated_injection(
                      rng, probe.trace, golden.microvisor().program)
                : InjectionExperiment::draw_injection(rng, probe.steps);
      }
      const hv::Injection inj = prop.injection;
      InjectionExperiment::Result r;
      if (prop.analytic) {
        // Slot resolved without a faulted run: its live mass sits below the
        // weight floor (or rejection redraw exhausted), so the whole slot is
        // attributed to Masked.  The record mirrors what the run would have
        // produced except that no activation bookkeeping exists
        // (activated = false) and the features are the golden run's.
        InjectionRecord& rec0 = r.record;
        rec0.reason = act.reason;
        rec0.activation_seed = act.seed;
        rec0.vcpu = act.vcpu;
        rec0.injection = inj;
        rec0.injected = true;
        rec0.consequence = Consequence::Masked;
        rec0.features = FeatureVector::from(act.reason, probe.counters);
        r.golden_features = rec0.features;
        r.golden_ok = probe.reached_vm_entry;
        if (cm.analytic_slots != nullptr) cm.analytic_slots->inc();
      } else {
        {
          // Covers the injection, the faulted run under Xentry interception,
          // and the outcome classification.
          obs::TraceRecorder::Span span(tr, "phase:faulted_run", tid);
          span.arg("at_step", inj.at_step);
          r = experiment.run_one(act, inj, probe);
        }
        if (sampler != nullptr) {
          r.record.weight = prop.live_mass;
          r.record.masked_weight = 1.0 - prop.live_mass;
        }
      }
      if (cfg.collect_dataset) {
        result.dataset.add(r.golden_features.as_array(), ml::Label::Correct);
        if (r.record.activated && r.record.trap == sim::TrapKind::None &&
            r.record.injected) {
          // Reached VM entry: the transition detector's input space.
          result.dataset.add(r.record.features.as_array(),
                             r.record.trace_diverged ? ml::Label::Incorrect
                                                     : ml::Label::Correct);
        }
      }
      InjectionRecord rec = std::move(r.record);
      // Streaming bookkeeping runs whether or not the record is kept in
      // RAM: the digest and effective mass define the campaign's output.
      effective += rec.weight > 0.0 ? 1.0 / rec.weight : 1.0;
      digest = digest_update(digest, rec);
      ++records_written;
      if (sink != nullptr) {
        frame.clear();
        encode_record(rec, fmt, frame);
        sink->append(shard_index, frame);
        if (progress != nullptr) {
          progress->sink_lag.store(sink->buffered_bytes(shard_index),
                                   std::memory_order_relaxed);
          progress->dropped.store(sink->stats(shard_index).dropped,
                                  std::memory_order_relaxed);
        }
      }
      if (cm.injections != nullptr) {
        cm.injections->inc();
        cm.golden_steps->inc(probe.steps);
        if (rec.activated) cm.activated->inc();
        if (is_manifested(rec.consequence)) cm.manifested->inc();
        if (rec.detected) cm.detected->inc();
        if (!rec.blackbox.empty()) cm.blackbox_dumps->inc();
        if (rec.forensics.has_value()) {
          const obs::ForensicsRecord& fx = *rec.forensics;
          if (cm.forensics_replays != nullptr) {
            cm.forensics_replays->inc();
            cm.forensics_replay_steps->inc(fx.replay_steps);
            if (!fx.heuristic_agrees) cm.forensics_mismatch->inc();
            if (fx.diverged) {
              cm.forensics_latency->observe(fx.divergence.step - inj.at_step);
              if (!fx.taint.empty()) {
                cm.forensics_taint->observe(fx.taint.back().mem_words);
              }
            }
            const auto cls =
                static_cast<std::size_t>(effective_undetected(rec));
            if (cm.forensics_class[cls] != nullptr) {
              cm.forensics_class[cls]->inc();
            }
          }
        }
      }
      if (tr != nullptr && !rec.detected &&
          rec.consequence == Consequence::AppSdc) {
        tr->instant("undetected_sdc", tid, "at_step", inj.at_step);
      }
      if (progress != nullptr) {
        progress->completed.fetch_add(1, std::memory_order_relaxed);
        if (rec.detected) {
          progress->detected[static_cast<int>(rec.technique)].fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      if (cfg.streaming.keep_records) {
        result.records.push_back(std::move(rec));
      }
      for (int g = 0; g < cfg.stream_gap; ++g) {
        experiment.advance(gen.next());
      }
    }
    if (streaming.journal != nullptr &&
        (i + 1) % cfg.streaming.checkpoint_every == 0 && i + 1 < quota) {
      write_checkpoint(static_cast<std::uint64_t>(i) + 1);
    }
    if (cfg.streaming.abort_after > 0 && i + 1 >= cfg.streaming.abort_after) {
      // Simulated SIGKILL (test hook): abandon buffered sink bytes and
      // return without the final flush/checkpoint, exactly as a killed
      // process would lose them.
      if (sink != nullptr) sink->discard(shard_index);
      return result;
    }
  }

  // -- end of shard: seal gauges, drain the sink, journal the finish --------
  if (oo.metrics) {
    // Each executed record stands in for 1/weight uniform draws; under
    // uniform sampling every weight is 1 and this equals the record count.
    // Per-shard gauges sum on merge into the campaign total.
    result.metrics.gauge("campaign.effective_injections")
        .set(static_cast<std::int64_t>(std::llround(effective)));
    if (oo.tracing) {
      result.metrics.gauge("obs.trace.dropped")
          .set(static_cast<std::int64_t>(result.trace.dropped()));
    }
  }
  if (sink != nullptr) {
    sink->flush(shard_index);
    mirror_sink_stats();
    result.records_streamed = records_written;
    if (progress != nullptr) {
      progress->sink_lag.store(0, std::memory_order_relaxed);
    }
  }
  if (streaming.journal != nullptr) {
    write_checkpoint(static_cast<std::uint64_t>(quota));
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& cfg) {
  validate_campaign_config(cfg);
  if (cfg.analysis != nullptr) {
    // Artifacts are keyed to the exact program text; stale artifacts
    // would make the legal-edge sets wrong in both directions (missed
    // detections and false positives), so mismatches are config errors.
    const hv::Microvisor probe = hv::build_microvisor(cfg.machine);
    if (analysis::program_signature(probe.program) !=
        cfg.analysis->signature) {
      throw std::invalid_argument(
          "CampaignConfig: analysis artifacts were computed for a "
          "different program than this machine configuration assembles "
          "(signature mismatch) — re-run analyze_program with the same "
          "MicrovisorOptions");
    }
  }

  // Compile the threaded stream once, up front: every shard shares the
  // immutable compilation, and a tiling bug surfaces here as a thrown
  // config error instead of inside a worker thread.
  std::shared_ptr<const sim::jit::CompiledProgram> compiled;
  if (cfg.xentry.engine == sim::EngineKind::Jit) {
    compiled = analysis::compile_threaded(*cfg.analysis);
  }

  // Fleet mode pins the shard space to the fleet-wide unit count (the
  // same quotas and seeds the single-process run with shards = unit_count
  // uses) and this process executes only its assigned subset.
  const bool fleet = cfg.fleet.unit_count > 0;
  int shards = cfg.shards;
  if (fleet) {
    shards = cfg.fleet.unit_count;
  } else {
    if (shards <= 0) {
      shards = static_cast<int>(std::thread::hardware_concurrency());
      if (shards <= 0) shards = 4;
    }
    if (shards > cfg.injections && cfg.injections > 0) shards = cfg.injections;
  }
  std::vector<int> active;  // shard indices this process runs, ascending
  if (fleet) {
    active = cfg.fleet.units;
    std::sort(active.begin(), active.end());
  } else {
    active.resize(static_cast<std::size_t>(shards));
    std::iota(active.begin(), active.end(), 0);
  }

  const wl::WorkloadProfile profile =
      cfg.workload.mix.empty() ? uniform_sweep_profile() : cfg.workload;

  // -- streaming: record sink + checkpoint journal ---------------------------
  const CampaignConfig::StreamingConfig& st = cfg.streaming;
  CheckpointHeader header;
  header.seed = cfg.seed;
  header.injections = cfg.injections;
  header.shards = shards;
  header.activation_bias = cfg.activation_bias;
  header.warmup_activations = cfg.warmup_activations;
  header.stream_gap = cfg.stream_gap;
  header.importance = cfg.sampling.importance;
  header.checkpoint_every = st.checkpoint_every;
  header.records_format = static_cast<std::uint8_t>(st.records_format);
  if (fleet) header.units = active;
  JournalContents journal_state;
  bool resuming = false;
  if (!st.checkpoint_path.empty()) {
    journal_state = read_journal(st.checkpoint_path);
    if (journal_state.valid) {
      // An existing journal means "continue this campaign" — but only the
      // exact same campaign.  Resuming under a different identity would
      // silently splice two different record streams together.
      if (!(journal_state.header == header)) {
        throw std::invalid_argument(
            "CampaignConfig: checkpoint journal at " + st.checkpoint_path +
            " was written by a campaign with a different configuration "
            "(seed/injections/shards/sampling mismatch) — resume with the "
            "original config or point checkpoint_path elsewhere");
      }
      resuming = true;
    }
  }

  std::unique_ptr<obs::ShardedFileSink> sink;
  if (!st.records_path.empty()) {
    obs::ShardedFileSink::Options so;
    so.base_path = st.records_path;
    so.format = st.records_format;
    so.shard_count = static_cast<std::size_t>(shards);
    so.buffer_bytes = st.sink_buffer_bytes;
    if (fleet) {
      so.active_shards.reserve(active.size());
      for (int u : active) {
        so.active_shards.push_back(static_cast<std::size_t>(u));
      }
    }
    if (resuming) {
      // Truncate each shard stream to its journaled durable offset: frames
      // past the last commit point are torn tails, rewritten on resume.
      so.resume_offsets.assign(static_cast<std::size_t>(shards), 0);
      for (int s = 0; s < shards; ++s) {
        const auto& ck = journal_state.shards[static_cast<std::size_t>(s)];
        if (ck.has_value()) {
          so.resume_offsets[static_cast<std::size_t>(s)] = ck->sink_offset;
        }
      }
    }
    sink = std::make_unique<obs::ShardedFileSink>(std::move(so));
    if (!sink->ok()) {
      throw std::runtime_error("campaign: cannot open record sink at " +
                               st.records_path);
    }
  }

  std::unique_ptr<CheckpointJournal> journal;
  if (!st.checkpoint_path.empty()) {
    journal = resuming ? CheckpointJournal::append_to(st.checkpoint_path)
                       : CheckpointJournal::create(st.checkpoint_path, header);
    if (journal == nullptr || !journal->ok()) {
      throw std::runtime_error(
          "campaign: cannot open checkpoint journal at " + st.checkpoint_path);
    }
  }

  const auto t0 = Clock::now();
  const auto epoch = obs::TraceRecorder::Clock::now();

  // -- heartbeat machinery ---------------------------------------------------
  const bool heartbeat_on =
      cfg.heartbeat.interval_sec > 0 && cfg.heartbeat.callback != nullptr;
  std::unique_ptr<ShardProgress[]> progress;
  if (heartbeat_on) {
    progress = std::make_unique<ShardProgress[]>(
        static_cast<std::size_t>(shards));
  }
  const auto shard_quota = [&](int u) {
    return static_cast<std::uint64_t>(
        cfg.injections / shards + (u < cfg.injections % shards ? 1 : 0));
  };
  // This process's own workload: in fleet mode the sum of the assigned
  // units' quotas, otherwise exactly cfg.injections.
  std::uint64_t hb_total = 0;
  for (int u : active) hb_total += shard_quota(u);
  const auto make_sample = [&](bool last) {
    HeartbeatSample s;
    s.last = last;
    s.total = hb_total;
    s.shards.reserve(active.size());
    for (int u : active) {
      const ShardProgress& p = progress[u];
      HeartbeatSample::ShardThroughput tp;
      tp.shard = u;
      tp.completed = p.completed.load(std::memory_order_relaxed);
      s.shards.push_back(tp);
      s.completed += tp.completed;
      s.checkpointed += p.checkpointed.load(std::memory_order_relaxed);
      s.sink_lag_bytes += p.sink_lag.load(std::memory_order_relaxed);
      s.sink_dropped += p.dropped.load(std::memory_order_relaxed);
      for (int t = 0; t < kNumTechniques; ++t) {
        s.detected_by_technique[static_cast<std::size_t>(t)] +=
            p.detected[t].load(std::memory_order_relaxed);
      }
    }
    for (std::uint64_t d : s.detected_by_technique) s.detected_total += d;
    s.elapsed_sec = std::chrono::duration<double>(Clock::now() - t0).count();
    s.injections_per_sec =
        s.elapsed_sec > 0 ? static_cast<double>(s.completed) / s.elapsed_sec
                          : 0.0;
    return s;
  };

  std::jthread monitor;
  if (heartbeat_on) {
    monitor = std::jthread([&](std::stop_token st) {
      std::mutex m;
      std::condition_variable_any cv;
      std::uint64_t prev_completed = 0;
      std::vector<std::uint64_t> prev_shard(active.size(), 0);
      auto prev_t = Clock::now();
      std::unique_lock lk(m);
      const auto interval =
          std::chrono::duration<double>(cfg.heartbeat.interval_sec);
      while (!st.stop_requested()) {
        cv.wait_for(lk, st, interval, [] { return false; });
        if (st.stop_requested()) break;  // final sample comes post-join
        HeartbeatSample s = make_sample(false);
        const auto now = Clock::now();
        const double dt = std::chrono::duration<double>(now - prev_t).count();
        s.recent_per_sec =
            dt > 0 ? static_cast<double>(s.completed - prev_completed) / dt
                   : 0.0;
        // Per-shard recent rates feed the straggler monitor; shards that
        // already finished their quota are exempt (a done shard is not
        // slow, it is done).
        std::vector<double> rates;
        std::vector<std::size_t> unfinished;
        for (std::size_t k = 0; k < s.shards.size(); ++k) {
          HeartbeatSample::ShardThroughput& tp = s.shards[k];
          tp.recent_per_sec =
              dt > 0 ? static_cast<double>(tp.completed - prev_shard[k]) / dt
                     : 0.0;
          prev_shard[k] = tp.completed;
          if (tp.completed < shard_quota(tp.shard)) {
            unfinished.push_back(k);
            rates.push_back(tp.recent_per_sec);
          }
        }
        const std::vector<bool> lag =
            obs::flag_stragglers(rates, cfg.heartbeat.straggler_fraction);
        for (std::size_t j = 0; j < unfinished.size(); ++j) {
          if (lag[j]) {
            s.shards[unfinished[j]].straggler = true;
            ++s.stragglers;
          }
        }
        // ETA from the freshest rate available: the recent window tracks
        // load changes; the mean covers the first interval.
        const double rate =
            s.recent_per_sec > 0 ? s.recent_per_sec : s.injections_per_sec;
        s.eta_sec = rate > 0 && s.total > s.completed
                        ? static_cast<double>(s.total - s.completed) / rate
                        : 0.0;
        prev_completed = s.completed;
        prev_t = now;
        cfg.heartbeat.callback(s);
      }
    });
  }

  std::vector<CampaignResult> partials(static_cast<std::size_t>(shards));
  {
    std::vector<std::jthread> threads;
    threads.reserve(active.size());
    for (const int s : active) {
      threads.emplace_back([&cfg, &profile, &partials, &progress, &compiled,
                            &sink, &journal, &journal_state, resuming, s,
                            shards, epoch] {
        ShardStreaming ss;
        ss.sink = sink.get();
        ss.journal = journal.get();
        if (resuming) {
          const auto& ck = journal_state.shards[static_cast<std::size_t>(s)];
          if (ck.has_value()) ss.resume = &*ck;
        }
        partials[static_cast<std::size_t>(s)] =
            run_shard(cfg, profile, s, shards, epoch, compiled,
                      progress ? &progress[s] : nullptr, ss);
      });
    }
  }  // jthreads join here

  if (heartbeat_on) {
    monitor.request_stop();
    monitor.join();
    // The exact end-of-campaign sample, from the caller's thread.
    HeartbeatSample s = make_sample(true);
    s.recent_per_sec = s.injections_per_sec;
    cfg.heartbeat.callback(s);
  }

  // Move-merge: records splice via move iterators, datasets via one bulk
  // append per shard, metrics/trace via per-shard merges.  Order stays by
  // shard index, so merged output is deterministic for a fixed
  // (seed, shards).
  CampaignResult merged;
  merged.resumed = resuming;
  if (cfg.obs.tracing) {
    // Global budget: each shard kept at most trace_max_events, so the
    // merged buffer never drops what the shards kept.
    merged.trace = obs::TraceRecorder(
        cfg.obs.trace_max_events * static_cast<std::size_t>(shards), epoch);
  }
  std::size_t total_records = 0, total_rows = 0;
  for (const CampaignResult& p : partials) {
    total_records += p.records.size();
    total_rows += p.dataset.size();
  }
  merged.records.reserve(total_records);
  merged.dataset.reserve(total_rows);
  for (CampaignResult& p : partials) {
    merged.records.insert(merged.records.end(),
                          std::make_move_iterator(p.records.begin()),
                          std::make_move_iterator(p.records.end()));
    merged.dataset.append(p.dataset);
    merged.metrics.merge_from(p.metrics);
    merged.trace.merge_from(std::move(p.trace));
    merged.records_streamed += p.records_streamed;
  }
  if (cfg.obs.metrics) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const double produced =
        merged.records_streamed > 0
            ? static_cast<double>(merged.records_streamed)
            : static_cast<double>(merged.records.size());
    merged.metrics.gauge("campaign.shards").set(shards);
    merged.metrics.gauge("campaign.elapsed_us")
        .set(static_cast<std::int64_t>(elapsed * 1e6));
    merged.metrics.gauge("campaign.injections_per_sec")
        .set(elapsed > 0 ? static_cast<std::int64_t>(produced / elapsed) : 0);
    // campaign.effective_injections is the sum of the per-shard gauges
    // (each shard journals and seals its own accumulator, which is what
    // makes the value resume-stable); only the rate derives here.
    const double effective = static_cast<double>(
        merged.metrics.gauge("campaign.effective_injections").value());
    merged.metrics.gauge("campaign.effective_injections_per_sec")
        .set(elapsed > 0 ? static_cast<std::int64_t>(effective / elapsed)
                         : 0);
  }
  return merged;
}

}  // namespace xentry::fault
