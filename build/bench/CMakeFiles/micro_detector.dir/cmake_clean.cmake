file(REMOVE_RECURSE
  "CMakeFiles/micro_detector.dir/micro_detector.cpp.o"
  "CMakeFiles/micro_detector.dir/micro_detector.cpp.o.d"
  "micro_detector"
  "micro_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
