#include "hv/machine.hpp"

#include <gtest/gtest.h>

namespace xentry::hv {
namespace {

namespace L = layout;

// The single most important substrate property: every handler, fed legal
// inputs, runs fault-free to VM entry — no traps, no assertion failures —
// across many seeds.  The whole detection story depends on fault-free
// executions being clean.
class FaultFreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFreeSweep, EveryHandlerReachesVmEntry) {
  Machine m;
  const std::uint64_t seed = GetParam();
  for (const ExitReason& r : all_exit_reasons()) {
    Activation act = m.make_activation(r, seed);
    RunResult res = m.run(act);
    EXPECT_TRUE(res.reached_vm_entry)
        << handler_symbol(r) << " seed=" << seed << " trapped with "
        << sim::trap_name(res.trap.kind) << " at " << res.trap.fault_addr
        << " (assert id " << res.trap.aux << ")";
    EXPECT_GT(res.counters.inst_retired, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFreeSweep,
                         ::testing::Values(1, 7, 42, 99, 1234, 77777));

TEST(MachineTest, CountersVaryByExitReason) {
  Machine m;
  auto run_counters = [&](const ExitReason& r) {
    return m.run(m.make_activation(r, 5)).counters;
  };
  const auto spurious =
      run_counters(ExitReason::apic(ApicInterrupt::spurious));
  const auto timer = run_counters(ExitReason::apic(ApicInterrupt::timer));
  // The timer path (update_time + softirq + schedule) dwarfs the spurious
  // interrupt handler.
  EXPECT_GT(timer.inst_retired, 4 * spurious.inst_retired);
  EXPECT_GT(timer.branches, spurious.branches);
  EXPECT_GT(timer.stores, spurious.stores);
}

TEST(MachineTest, DeterministicGivenSeedAndState) {
  Machine a, b;
  const Activation act =
      a.make_activation(ExitReason::hypercall(Hypercall::mmu_update), 11);
  RunResult ra = a.run(act);
  RunResult rb = b.run(act);
  EXPECT_EQ(ra.counters, rb.counters);
  EXPECT_EQ(ra.steps, rb.steps);
  const auto diffs = Machine::diff_persistent_state(a, b);
  EXPECT_TRUE(diffs.empty());
}

TEST(MachineTest, SnapshotRestoreReproducesRunExactly) {
  Machine m;
  const Activation act =
      m.make_activation(ExitReason::hypercall(Hypercall::console_io), 3);
  const Machine::Snapshot snap = m.snapshot();
  RunResult r1 = m.run(act);
  const auto state1 = m.memory().snapshot();
  m.restore(snap);
  RunResult r2 = m.run(act);
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_EQ(m.memory().snapshot(), state1);
}

TEST(MachineTest, CpuidEmulationWritesVendorString) {
  // The paper's Section II example: cpuid trapped via #GP, emulated by the
  // hypervisor, results placed in the VCPU structure.
  Machine m;
  Activation act;
  act.reason = ExitReason::exception(GuestException::general_protection);
  act.arg1 = 0x0f;  // cpuid opcode
  act.arg2 = 0;     // leaf 0
  act.vcpu = 1;
  act.seed = 9;
  RunResult res = m.run(act);
  ASSERT_TRUE(res.reached_vm_entry);
  const sim::Addr vc = L::vcpu_addr(1);
  EXPECT_EQ(m.memory().peek(vc + L::kVcpuSaveGprs + 1), 0x756e6547u);
  EXPECT_EQ(m.memory().peek(vc + L::kVcpuSaveGprs + 2), 0x6c65746eu);
  EXPECT_EQ(m.memory().peek(vc + L::kVcpuSaveGprs + 3), 0x49656e69u);
}

TEST(MachineTest, PageFaultFixupAndInjection) {
  Machine m;
  // Mapped L1 slot (va >> 4 < 12): hypervisor fixes up.
  Activation mapped;
  mapped.reason = ExitReason::exception(GuestException::page_fault);
  mapped.arg1 = 0x23;  // l1 idx 2: mapped
  mapped.vcpu = 1;
  RunResult r1 = m.run(mapped);
  ASSERT_TRUE(r1.reached_vm_entry);
  const sim::Addr ram = L::guest_ram_addr(m.domain_of_vcpu(1));
  EXPECT_NE(m.memory().peek(ram + L::kGuestAppPtrs + 0x23), 0u);

  // Unmapped slot: injected into the guest (frame written, rip vectored).
  Activation unmapped = mapped;
  unmapped.arg1 = 0xf7;  // l1 idx 15: unmapped
  RunResult r2 = m.run(unmapped);
  ASSERT_TRUE(r2.reached_vm_entry);
  // inject_guest_event overwrites the error-code slot with the vector.
  EXPECT_EQ(m.memory().peek(ram + L::kGuestExcFrame + 3), 14u);
  const sim::Addr vc = L::vcpu_addr(1);
  EXPECT_EQ(m.memory().peek(vc + L::kVcpuSaveRip),
            m.memory().peek(vc + L::kVcpuTrapTable + 14));
}

TEST(MachineTest, EventChannelSendSetsPendingAndWakes) {
  Machine m;
  Activation act;
  act.reason = ExitReason::hypercall(Hypercall::event_channel_op);
  act.arg1 = 1;  // send
  act.arg2 = 3;  // port 3 (bound at boot)
  act.vcpu = 1;
  RunResult res = m.run(act);
  ASSERT_TRUE(res.reached_vm_entry);
  const int dom = m.domain_of_vcpu(1);
  const sim::Word pending =
      m.memory().peek(L::shared_info_addr(dom) + L::kShEvtchnPending);
  EXPECT_TRUE(pending & (1u << 3));
}

TEST(MachineTest, MaskedEventChannelIsNotDelivered) {
  Machine m;
  const int dom = 1;
  const int vcpu = 1;  // vcpu 1 belongs to domain 1 with 1 vcpu/domain
  m.memory().poke(L::shared_info_addr(dom) + L::kShEvtchnMask, 1u << 3);
  Activation act;
  act.reason = ExitReason::hypercall(Hypercall::event_channel_op);
  act.arg1 = 1;
  act.arg2 = 3;
  act.vcpu = vcpu;
  ASSERT_TRUE(m.run(act).reached_vm_entry);
  EXPECT_EQ(m.memory().peek(L::shared_info_addr(dom) + L::kShEvtchnPending),
            0u);
}

TEST(MachineTest, IrqRoutesThroughEventChannel) {
  Machine m;
  Activation act = m.make_activation(ExitReason::irq(4), 2, 0);
  ASSERT_TRUE(m.run(act).reached_vm_entry);
  // Boot routing: irq 4 -> dom (4 % 3 = 1), port (4 % 8 = 4).
  const sim::Word pending =
      m.memory().peek(L::shared_info_addr(1) + L::kShEvtchnPending);
  EXPECT_TRUE(pending & (1u << 4));
}

TEST(MachineTest, SchedYieldSwitchesCurrentVcpu) {
  Machine m;
  Activation act;
  act.reason = ExitReason::hypercall(Hypercall::sched_op);
  act.arg1 = 0;  // yield
  act.vcpu = 0;
  ASSERT_TRUE(m.run(act).reached_vm_entry);
  const sim::Word current = m.memory().peek(L::kHvDataBase +
                                            L::kHvCurrentVcpu);
  EXPECT_NE(current, L::vcpu_addr(0));  // round-robin moved on
}

TEST(MachineTest, BlockThenWakeRoundTrip) {
  Machine m;
  Activation block;
  block.reason = ExitReason::hypercall(Hypercall::sched_op);
  block.arg1 = 1;
  block.vcpu = 1;
  ASSERT_TRUE(m.run(block).reached_vm_entry);
  EXPECT_EQ(m.memory().peek(L::vcpu_addr(1) + L::kVcpuState),
            static_cast<sim::Word>(L::kVcpuStateBlocked));
  // An event for domain 1 port 2 (bound to vcpu 1) wakes it.
  Activation wake;
  wake.reason = ExitReason::hypercall(Hypercall::event_channel_op_compat);
  wake.arg1 = 2;
  wake.vcpu = 1;
  // Note: run() itself marks the exiting vcpu running; use a different
  // vcpu to deliver so the wake path does the work.
  wake.vcpu = 0;
  // Route the event at domain 0... instead drive via do_irq to domain 1:
  Activation irq = m.make_activation(ExitReason::irq(1), 5, 0);  // dom 1
  ASSERT_TRUE(m.run(irq).reached_vm_entry);
  EXPECT_EQ(m.memory().peek(L::vcpu_addr(1) + L::kVcpuState),
            static_cast<sim::Word>(L::kVcpuStateRunning));
}

TEST(MachineTest, InjectionFlipIsAppliedAndTracked) {
  Machine m;
  const Activation act =
      m.make_activation(ExitReason::hypercall(Hypercall::mmu_update), 21, 1);

  Machine::Snapshot snap = m.snapshot();
  RunResult golden = m.run(act);
  ASSERT_TRUE(golden.reached_vm_entry);

  // Inject into a register the handler actually uses: rdi (the count).
  m.restore(snap);
  Injection inj{2, sim::Reg::rdi, 2};
  RunOptions opts;
  opts.injection = &inj;
  RunResult faulted = m.run(act, opts);
  EXPECT_TRUE(faulted.injected);
  EXPECT_TRUE(faulted.activated);
  EXPECT_GE(faulted.activation_step, inj.at_step);
}

TEST(MachineTest, NonActivatedFaultLeavesNoTrace) {
  Machine m;
  const Activation act = m.make_activation(
      ExitReason::apic(ApicInterrupt::spurious), 4, 0);
  Machine::Snapshot snap = m.snapshot();
  RunResult golden = m.run(act);
  const auto golden_state = m.memory().snapshot();
  ASSERT_TRUE(golden.reached_vm_entry);

  // The spurious handler never reads rdx: flip it and expect a masked run.
  m.restore(snap);
  Injection inj{1, sim::Reg::rdx, 40};
  RunOptions opts;
  opts.injection = &inj;
  RunResult faulted = m.run(act, opts);
  EXPECT_TRUE(faulted.injected);
  EXPECT_FALSE(faulted.activated);
  EXPECT_TRUE(faulted.reached_vm_entry);
  EXPECT_EQ(faulted.counters, golden.counters);
  EXPECT_EQ(m.memory().snapshot(), golden_state);
}

TEST(MachineTest, RipFlipUsuallyTrapsBeforeVmEntry) {
  Machine m;
  const Activation act =
      m.make_activation(ExitReason::hypercall(Hypercall::console_io), 8, 2);
  Machine::Snapshot snap = m.snapshot();
  ASSERT_TRUE(m.run(act).reached_vm_entry);

  int traps = 0;
  for (int bit : {20, 30, 40, 50, 60}) {
    m.restore(snap);
    Injection inj{5, sim::Reg::rip, bit};
    RunOptions opts;
    opts.injection = &inj;
    RunResult res = m.run(act, opts);
    if (!res.reached_vm_entry) {
      ++traps;
      EXPECT_EQ(res.trap.kind, sim::TrapKind::PageFault);
    }
  }
  EXPECT_EQ(traps, 5);  // high rip bits leave the code region entirely
}

TEST(MachineTest, TraceCapturesControlFlowDivergence) {
  Machine m;
  const Activation act = m.make_activation(
      ExitReason::hypercall(Hypercall::grant_table_op), 13, 1);
  Machine::Snapshot snap = m.snapshot();

  std::vector<sim::Addr> golden_trace;
  RunOptions gopts;
  gopts.trace = &golden_trace;
  ASSERT_TRUE(m.run(act, gopts).reached_vm_entry);

  m.restore(snap);
  std::vector<sim::Addr> fault_trace;
  Injection inj{3, sim::Reg::rsi, 1};  // corrupt the batch count
  RunOptions fopts;
  fopts.trace = &fault_trace;
  fopts.injection = &inj;
  RunResult res = m.run(act, fopts);
  if (res.reached_vm_entry) {
    EXPECT_NE(golden_trace, fault_trace);  // extra/dropped loop iterations
  }
}

TEST(MachineTest, AssertionCountingCountsRetiredAsserts) {
  Machine m;
  const Activation act =
      m.make_activation(ExitReason::hypercall(Hypercall::mmu_update), 2, 0);
  RunOptions opts;
  opts.count_assertions = true;
  RunResult res = m.run(act, opts);
  ASSERT_TRUE(res.reached_vm_entry);
  EXPECT_GE(res.assertions_executed, 1u);  // the batch-bound assert
}

TEST(MachineTest, AssertionsDetectCorruptedIdleState) {
  // Corrupt a vcpu state so a wake/schedule path trips an assertion or
  // at least diverges; specifically force the idle-vcpu assert by marking
  // the idle vcpu non-idle and emptying the runqueue.
  Machine m;
  m.memory().poke(L::kHvDataBase + L::kHvRunqCount, 0);
  m.memory().poke(L::vcpu_addr(m.num_vcpus()) + L::kVcpuState,
                  L::kVcpuStateRunning);  // corrupted idle vcpu
  Activation act;
  act.reason = ExitReason::hypercall(Hypercall::sched_op_compat);
  act.arg1 = 1;  // block: forces schedule onto the idle path
  act.vcpu = 0;
  RunResult res = m.run(act);
  ASSERT_FALSE(res.reached_vm_entry);
  EXPECT_EQ(res.trap.kind, sim::TrapKind::AssertFailed);
  EXPECT_EQ(res.trap.aux, static_cast<std::uint32_t>(kAssertIdleVcpu));
}

TEST(MachineTest, PersistentDiffClassifiesTimeValues) {
  Machine a, b;
  const sim::Addr sh = L::shared_info_addr(1);
  b.memory().poke(sh + L::kShSystemTime, 12345);
  const auto diffs = Machine::diff_persistent_state(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].cls, L::OutputClass::TimeValue);
  EXPECT_EQ(diffs[0].domain, 1);
}

TEST(MachineTest, PersistentDiffClassifiesGuestControl) {
  Machine a, b;
  b.memory().poke(L::vcpu_addr(2) + L::kVcpuSaveRip, 0xbad);
  const auto diffs = Machine::diff_persistent_state(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].cls, L::OutputClass::GuestControl);
  EXPECT_EQ(diffs[0].domain, 2);
}

TEST(MachineTest, StackIsExcludedFromPersistentDiff) {
  Machine a, b;
  b.memory().poke(L::kStackBase + 5, 77);
  EXPECT_TRUE(Machine::diff_persistent_state(a, b).empty());
}

TEST(MachineTest, BadVcpuIndexThrows) {
  Machine m;
  Activation act;
  act.reason = ExitReason::softirq();
  act.vcpu = 99;
  EXPECT_THROW(m.run(act), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::hv
