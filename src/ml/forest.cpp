#include "ml/forest.hpp"

#include <stdexcept>

namespace xentry::ml {

void RandomForest::train(const Dataset& data, const Params& params) {
  if (params.num_trees <= 0) {
    throw std::invalid_argument("RandomForest: num_trees must be positive");
  }
  trees_.clear();
  std::mt19937_64 rng(params.seed);
  TreeParams tp = params.tree;
  if (tp.random_features == 0) {
    tp.random_features =
        random_tree_params(data.num_features(), 0).random_features;
  }
  for (int i = 0; i < params.num_trees; ++i) {
    Dataset bag = data.bootstrap(rng);
    tp.seed = rng();
    DecisionTree tree;
    tree.train(bag, tp);
    trees_.push_back(std::move(tree));
  }
}

Label RandomForest::predict(std::span<const std::int64_t> features,
                            int* comparisons) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict: untrained model");
  }
  int votes_incorrect = 0;
  int total_cmps = 0;
  for (const DecisionTree& t : trees_) {
    int c = 0;
    if (t.predict(features, &c) == Label::Incorrect) ++votes_incorrect;
    total_cmps += c;
  }
  if (comparisons != nullptr) *comparisons = total_cmps;
  return 2 * votes_incorrect >= static_cast<int>(trees_.size())
             ? Label::Incorrect
             : Label::Correct;
}

}  // namespace xentry::ml
